"""A simulated cluster node: NIC, memory-copy channel, and liveness."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.net.flowsched import LinkScheduler
from repro.sim import Event, Resource, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.cluster import Cluster


class Node:
    """A physical node in the simulated cluster.

    Each node has:

    * an uplink and a downlink, each modelled as a serializing bandwidth pipe
      (a capacity-1 :class:`~repro.sim.Resource`) — concurrent transfers in
      the same direction interleave at block granularity, which approximates
      fair sharing and reproduces sender/receiver bottlenecks;
    * a :class:`~repro.net.flowsched.LinkScheduler` per NIC direction that
      admits flow-scheduled reservations on that link and accumulates
      per-flow utilization accounting;
    * a memory-copy channel used for worker-to-store and store-to-worker
      copies inside the node;
    * a liveness flag plus an incarnation counter used by failure injection.
    """

    def __init__(self, sim: Simulator, node_id: int, cluster: Optional["Cluster"] = None):
        self.sim = sim
        self.node_id = node_id
        self.cluster = cluster
        self.uplink = Resource(sim, capacity=1)
        self.downlink = Resource(sim, capacity=1)
        self.uplink_sched = LinkScheduler(sim, self.uplink, "up")
        self.downlink_sched = LinkScheduler(sim, self.downlink, "down")
        self.memcpy_channel = Resource(sim, capacity=1)
        self.alive = True
        #: Incremented every time the node recovers from a failure.  Stale
        #: transfers and stale store contents compare incarnations to detect
        #: that they belong to a previous life of the node.
        self.incarnation = 0
        #: Callbacks invoked with this node when it fails.
        self.failure_listeners: list[Callable[["Node"], None]] = []
        #: Callbacks invoked with this node when it recovers.
        self.recovery_listeners: list[Callable[["Node"], None]] = []
        #: Arbitrary per-node services (object store, directory shard, ...).
        self.services: dict[str, Any] = {}

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<Node {self.node_id} {state}>"

    def __hash__(self) -> int:
        return hash(("node", self.node_id))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.node_id == self.node_id

    # -- failure handling ---------------------------------------------------
    def fail(self) -> None:
        """Mark the node as failed and notify listeners.

        Listeners are responsible for tearing down transfers, dropping store
        contents, and killing tasks that ran on the node.
        """
        if not self.alive:
            return
        self.alive = False
        for listener in list(self.failure_listeners):
            listener(self)

    def recover(self) -> None:
        """Bring the node back with a fresh incarnation."""
        if self.alive:
            return
        self.alive = True
        self.incarnation += 1
        for listener in list(self.recovery_listeners):
            listener(self)

    def on_failure(self, callback: Callable[["Node"], None]) -> None:
        self.failure_listeners.append(callback)

    def remove_failure_listener(self, callback: Callable[["Node"], None]) -> None:
        """Deregister a failure listener (no-op if it is not registered).

        Short-lived waiters (e.g. a transfer racing its admission against a
        peer failure) must remove their listeners when the race resolves, or
        the listener list grows with every block transferred.
        """
        try:
            self.failure_listeners.remove(callback)
        except ValueError:
            pass

    def on_recovery(self, callback: Callable[["Node"], None]) -> None:
        self.recovery_listeners.append(callback)

    def failure_event(self) -> Event:
        """An event that fires when (or if) this node fails.

        Useful for racing a blocking wait against the peer's failure, for
        example a broadcast receiver waiting for its sender to produce the
        next block.
        """
        event = Event(self.sim)
        if not self.alive:
            event.succeed(self)
            return event

        def _notify(node: "Node") -> None:
            if not event.triggered:
                event.succeed(node)

        self.on_failure(_notify)
        return event

    def recovery_event(self) -> Event:
        """An event that fires when (or if) this node recovers."""
        event = Event(self.sim)
        if self.alive:
            event.succeed(self)
            return event

        def _notify(node: "Node") -> None:
            if not event.triggered:
                event.succeed(node)

        self.on_recovery(_notify)
        return event
