"""Configuration of the simulated cluster and network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.topology import Topology


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the simulated cluster.

    The defaults approximate the paper's testbed: AWS m5.4xlarge instances
    with 10 Gbps networking, ~170 microsecond object-directory RPCs, and a
    4 MB pipelining block size.

    Attributes:
        bandwidth: per-direction NIC bandwidth in bytes per second.
        latency: one-way propagation latency per block, in seconds.
        rpc_latency: latency of one control-plane RPC (e.g. an object
            directory lookup or location publish), in seconds.
        memcpy_bandwidth: bandwidth of in-node copies between a task worker
            and its local object store, in bytes per second.
        block_size: granularity of pipelined transfers, in bytes.
        small_object_threshold: objects strictly smaller than this are cached
            directly in the object directory (the paper's 64 KB fast path).
        reduce_block_compute_bandwidth: throughput of the element-wise reduce
            computation applied to each block, in bytes per second.
        failure_detection_delay: time between a peer failing and the other
            end of an open connection observing the failure, in seconds.
        num_directory_shards: number of object-directory shards spread over
            the cluster.
        flow_scheduling: admit each block transfer only when the source
            uplink slot and destination downlink slot are *simultaneously*
            free (reservation-based matching, the default).  When off, the
            transport falls back to sequential acquisition — hold the uplink,
            then queue on the downlink — which reintroduces head-of-line
            blocking at busy receivers (kept as an ablation and for the HOL
            regression test).
        topology: hierarchical fabric shape
            (:class:`~repro.net.topology.Topology`); ``None`` means the flat
            single-rack fabric matching the paper's testbed.  The topology's
            node count must equal the cluster's.
    """

    bandwidth: float = 1.25e9  # 10 Gbps
    latency: float = 5.0e-5
    rpc_latency: float = 1.7e-4
    memcpy_bandwidth: float = 5.0e9
    block_size: int = 4 * 1024 * 1024
    small_object_threshold: int = 64 * 1024
    reduce_block_compute_bandwidth: float = 2.0e10
    failure_detection_delay: float = 0.1
    num_directory_shards: int = 4
    flow_scheduling: bool = True
    topology: Optional["Topology"] = None

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.memcpy_bandwidth <= 0:
            raise ValueError("memcpy_bandwidth must be positive")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.latency < 0 or self.rpc_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.num_directory_shards <= 0:
            raise ValueError("num_directory_shards must be positive")
        if self.small_object_threshold < 0:
            raise ValueError("small_object_threshold must be non-negative")
        if self.reduce_block_compute_bandwidth <= 0:
            raise ValueError("reduce_block_compute_bandwidth must be positive")
        if self.failure_detection_delay < 0:
            raise ValueError("failure_detection_delay must be non-negative")

    def transmission_time(self, nbytes: float) -> float:
        """Serialization time of ``nbytes`` at the NIC rate."""
        return nbytes / self.bandwidth

    def memcpy_time(self, nbytes: float) -> float:
        """Time to copy ``nbytes`` between a worker and its local store."""
        return nbytes / self.memcpy_bandwidth

    def reduce_compute_time(self, nbytes: float) -> float:
        """Time to apply the reduce operator over ``nbytes``."""
        return nbytes / self.reduce_block_compute_bandwidth

    def num_blocks(self, nbytes: int) -> int:
        """Number of pipelining blocks an object of ``nbytes`` occupies."""
        if nbytes <= 0:
            return 1
        return -(-nbytes // self.block_size)

    def block_bytes(self, nbytes: int, block_index: int) -> int:
        """Size of block ``block_index`` of an object of ``nbytes``."""
        total = self.num_blocks(nbytes)
        if block_index < 0 or block_index >= total:
            raise IndexError(
                f"block {block_index} out of range for {nbytes}-byte object"
            )
        if block_index < total - 1:
            return self.block_size
        remainder = nbytes - self.block_size * (total - 1)
        return remainder if remainder > 0 else min(nbytes, self.block_size)


@dataclass
class ClusterSpec:
    """Shape of a simulated cluster.

    Attributes:
        num_nodes: number of physical nodes.
        workers_per_node: simulated task workers available on each node.
        network: the network configuration shared by all nodes.
    """

    num_nodes: int = 4
    workers_per_node: int = 4
    network: NetworkConfig = field(default_factory=NetworkConfig)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.workers_per_node <= 0:
            raise ValueError("workers_per_node must be positive")
