"""Coalesced block transfers: many blocks of one flow, O(1) timeline events.

The per-block transfer chain (reserve -> transmit -> release -> propagate,
then again for the next block) is what the simulated protocols *mean*, but
driving it one event per step makes large objects cost hundreds of kernel
round-trips per hop.  On an **uncontended** reservation the whole chain is
deterministic arithmetic: block ``j`` of the run transmits over
``[s_j, e_j)`` and lands at ``arr_j = e_j + L``, with ``s_{j+1} = arr_j``.
A :class:`CoalescedRun` precomputes exactly those boundaries (with the same
left-to-right float additions the per-block chain performs), sleeps once
until the end, and retrofits every side effect — link-scheduler accounting,
store byte accounting, destination block marks — that the per-block chain
would have produced.

Exactness is the design constraint; three mechanisms preserve it:

* **virtual holds** (:meth:`~repro.sim.resources.Resource.add_virtual_hold`)
  make each claimed link's ``in_use`` read ``1`` during transmission windows
  and ``0`` during propagation gaps — what per-block grants/releases would
  show — so load probes (e.g. directory source selection) see identical
  state at every instant;
* **re-splitting**: the moment anything disturbs the run — a competing
  request enqueues on a claimed link, or an endpoint fails — the run
  *materializes*: it truncates at the current block boundary, converts the
  current transmission window (if any) into a real hold released exactly at
  the boundary, and hands control back to the per-block loop, which from
  then on behaves block by block (per-block interleaving, fair-share timing
  and failure surfacing preserved);
* **arithmetic progress** (:class:`InflightSchedule` on the destination
  entry): readers of ``blocks_ready`` and ``wait_for_blocks`` during the
  run are answered from the boundary arrays — the same values, at the same
  times, a per-block mark sequence would have produced.

Eligibility (:func:`coalesce_eligible`) is deliberately conservative: every
claimed link must be idle with an empty queue and no other virtual hold,
both endpoints alive, and at least two blocks available to move.  Anything
else falls back to the per-block path, whose behaviour is the definition of
correct.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Callable, Generator, Optional, Sequence

from repro.net.errors import NodeFailedError
from repro.net.fastpath import stats_for
from repro.sim.core import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.flowsched import Flow, LinkScheduler
    from repro.net.node import Node
    from repro.sim.resources import Resource
    from repro.store.object_store import StoredObject

#: run states
_VIRTUAL, _MATERIALIZED, _DONE = range(3)


class InflightSchedule:
    """Arithmetic block-arrival schedule attached to a destination entry.

    While attached, ``entry.blocks_ready`` is computed from the arrival
    boundaries instead of stored marks, and ``wait_for_blocks`` thresholds
    inside the window are answered by events scheduled at the exact arrival
    timestamps.  ``limit`` truncates the schedule when the run re-splits;
    arrivals at or beyond it are delivered (or not) by whoever continues
    the transfer, through ordinary marks.
    """

    __slots__ = ("entry", "base", "arrivals", "limit", "firings", "run", "dependents")

    def __init__(
        self, entry: "StoredObject", base: int, arrivals: Sequence[float], run: "CoalescedRun"
    ):
        self.entry = entry
        self.base = base
        self.arrivals = arrivals
        self.limit = len(arrivals)
        #: the producing run (so a consumer can force a re-split).
        self.run = run
        #: downstream coalesced runs whose schedules were built from these
        #: arrival times (relay cascade); truncation re-splits them too.
        self.dependents: list["CoalescedRun"] = []
        #: scheduled waiter firings: mutable ``[threshold, event, active]``.
        self.firings: list[list] = []

    def ready_now(self, now: float) -> int:
        arrived = bisect_right(self.arrivals, now)
        if arrived > self.limit:
            arrived = self.limit
        return self.base + arrived

    def schedule_waiter(self, threshold: int, event: Event) -> None:
        """Arrange for ``event`` to fire at the threshold block's arrival."""
        firing = [threshold, event, True]
        self.firings.append(firing)
        sim = self.entry.sim
        trigger = sim.wake_at(self.arrivals[threshold - self.base - 1])
        trigger.callbacks = [lambda _ev, firing=firing: self._fire(firing)]

    def _fire(self, firing: list) -> None:
        if not firing[2]:
            return
        firing[2] = False
        threshold, event = firing[0], firing[1]
        entry = self.entry
        ready = entry.blocks_ready
        if event._ok is not None:  # pragma: no cover - defensive
            return
        if ready >= threshold:
            event.succeed(ready)
        else:
            # The run was truncated before this block; whoever resumed the
            # transfer will mark it eventually and fire the waiter then.
            entry._progress_waiters.append((threshold, event))

    def truncate(self, limit: int) -> None:
        """Arrivals at or beyond ``limit`` are no longer guaranteed.

        Dependent runs built their own boundaries from those arrivals, so
        they re-split at their current block (whose source block provably
        arrived already — a dependent block cannot start before its source
        block landed).
        """
        if limit < self.limit:
            self.limit = limit
        while self.dependents:
            self.dependents.pop()._materialize()

    def close(self) -> None:
        """Detach; pending scheduled waiters go back to ordinary marks."""
        for firing in self.firings:
            if firing[2]:
                firing[2] = False
                if firing[1]._ok is None:
                    self.entry._progress_waiters.append((firing[0], firing[1]))
        self.firings.clear()
        if self.entry._inflight is self:
            self.entry._inflight = None


class CoalescedRun:
    """Drive ``n`` consecutive blocks of one flow as a single timeline event.

    Built by :func:`coalesced_transfer` / the pull fast path after
    :func:`coalesce_eligible` held.  The run is its own virtual hold object
    (``occupied`` / ``on_contest``) for every claimed link.
    """

    __slots__ = (
        "sim",
        "src",
        "dst",
        "flow",
        "sizes",
        "tx",
        "latency",
        "links",
        "entry",
        "base",
        "account_out",
        "account_in",
        "n",
        "s",
        "e",
        "arr",
        "state",
        "cur",
        "in_tx",
        "post_arrival",
        "schedule",
        "src_schedule",
        "_wake",
        "_accounted",
        "_synthetic",
        "_listening",
        "preattached",
        "_obs_span",
        "_flight",
        "_flight_key",
        "_flight_flow",
    )

    #: host-profiler category for planning/accounting work done by this run
    #: class (``ConvoyRun`` overrides it — same code paths, separate blame).
    _prof_cat = "coalesce"

    def __init__(
        self,
        sim: Simulator,
        src: "Node",
        dst: "Node",
        flow: Optional["Flow"],
        sizes: Sequence[int],
        tx: Sequence[float],
        latency: float,
        links: Sequence[tuple["Resource", Optional["LinkScheduler"]]],
        entry: Optional["StoredObject"] = None,
        base: int = 0,
        account_out: Optional[Callable[[int], None]] = None,
        account_in: Optional[Callable[[int], None]] = None,
        ready_times: Optional[Sequence[float]] = None,
        src_schedule: Optional[InflightSchedule] = None,
        boundaries: Optional[tuple[Sequence[float], Sequence[float], Sequence[float]]] = None,
    ):
        prof = sim.host_prof
        if prof is not None:
            prof.enter(self._prof_cat)
        self.sim = sim
        self.src = src
        self.dst = dst
        self.flow = flow
        self.sizes = list(sizes)
        self.tx = list(tx)
        self.latency = latency
        self.links = list(links)
        self.entry = entry
        self.base = base
        self.account_out = account_out
        self.account_in = account_in
        self.n = len(self.sizes)
        if boundaries is not None:
            # Injected boundaries (convoy members): the planner already
            # replayed the admission algorithm and produced the exact
            # grant/end/arrival instants of every block.
            s, e, arr = boundaries
            s, e, arr = list(s), list(e), list(arr)
        else:
            # Boundary arrays built with the exact float recurrence of the
            # per-block chain: s_{j+1} = max((s_j + tx_j) + L, source arrival),
            # left-associated.  ``ready_times`` (absolute) gate blocks the
            # source has not produced yet — the relay cascade.
            s = []
            e = []
            arr = []
            t = sim._now
            for j, tx_j in enumerate(self.tx):
                if ready_times is not None:
                    ready = ready_times[j]
                    if ready > t:
                        t = ready
                s.append(t)
                t = t + tx_j
                e.append(t)
                t = t + latency
                arr.append(t)
        self.s = s
        self.e = e
        self.arr = arr
        self.state = _VIRTUAL
        self.cur = 0
        self.in_tx = False
        self.post_arrival = False
        self.schedule: Optional[InflightSchedule] = None
        self.src_schedule = src_schedule
        self._wake: Optional[Event] = None
        self._accounted = 0  # blocks fully link-accounted so far
        self._synthetic = False
        self._listening = False
        self._obs_span = None
        self._flight = None
        self._flight_key = ""
        self._flight_flow = ""
        #: True when an owning domain attached holds/schedule synchronously
        #: at formation time (so ``run`` must not attach again).
        self.preattached = False
        if prof is not None:
            prof.exit()

    # -- virtual-hold protocol (shared by every claimed resource) ----------
    def occupied(self, at: float) -> int:
        if self.state != _VIRTUAL:  # pragma: no cover - detached before then
            return 0
        i = bisect_right(self.s, at) - 1
        if i < 0 or i >= self.n:
            return 0
        return 1 if at < self.e[i] else 0

    def on_contest(self) -> None:
        self._materialize()

    def _on_peer_failure(self, _node: "Node") -> None:
        # In the materialized state the boundary continuation re-checks
        # liveness itself, exactly like the per-block chain does.
        if self.state == _VIRTUAL:
            self._materialize()

    def _materialize(self) -> None:
        """Truncate at the current block boundary and go real.

        Synchronous and side-effect-free w.r.t. simulated behaviour: it only
        converts the arithmetic occupancy into real holds (when inside a
        transmission window) and wakes the driver, which then walks the
        remaining boundary exactly as the per-block chain would have.

        Convoy members override this to materialize their whole domain (one
        member's plan is only valid while every member's is), then fall back
        here per member via :meth:`_materialize_self`.
        """
        self._materialize_self()

    def _on_unwind(self) -> None:
        """Hook: the owning process unwound mid-run.

        Convoy members override it to materialize their whole domain before
        the teardown accounting below runs (their plan dies with them).
        """

    def _materialize_self(self) -> None:
        if self.state != _VIRTUAL:
            return
        stats_for(self.src).bump("resplits")
        if self._flight is not None:
            self._flight.phase(self._flight_key, "resplit")
        now = self.sim._now
        i = bisect_right(self.s, now) - 1
        if i < 0:
            # Disturbed before the first block even started (a cascaded run
            # still waiting for its first source block): nothing happened
            # yet — hand everything back to the per-block loop.
            i = 0
            self.in_tx = False
            self.post_arrival = False
            self.cur = -1
        else:
            if i >= self.n:  # pragma: no cover - defensive
                i = self.n - 1
            self.cur = i
            self.in_tx = now < self.e[i]
            self.post_arrival = (not self.in_tx) and now >= self.arr[i]
        self.state = _MATERIALIZED
        for resource, _sched in self.links:
            resource.remove_virtual_hold(self)
        if self.in_tx:
            # The current block keeps transmitting: hold every link for real
            # until the boundary, as the per-block grant would.
            for resource, _sched in self.links:
                resource._in_use += 1
            self._synthetic = True
        if self.schedule is not None:
            # Arrivals after ``now`` (beyond the current block's, which the
            # driver delivers) are no longer scheduled; dependent cascaded
            # runs re-split with us.  (A convoy lead member's schedule starts
            # one block before the run, hence the base offset.)
            self.schedule.truncate(
                bisect_right(self.arr, now) + (self.base - self.schedule.base)
            )
        wake = self._wake
        if wake is not None and wake._ok is None:
            wake.succeed()

    # -- plumbing ----------------------------------------------------------
    def _sleep(self, target: float) -> Event:
        wake = Event(self.sim)
        self._wake = wake
        trigger = self.sim.wake_at(target)
        trigger.callbacks = [lambda _ev, wake=wake: self._fire(wake)]
        loc = self.sim.locality
        if loc is not None:
            # Boundary wake-ups belong to the destination's partition: the
            # run's remaining state lives with the receiving entry.
            loc.tag(trigger, self.dst.node_id)
            loc.tag(wake, self.dst.node_id)
        return wake

    def _fire(self, wake: Event) -> None:
        if wake is self._wake and wake._ok is None:
            wake.succeed()

    def _attach(self) -> None:
        stats_for(self.src).bump("coalesced_runs")
        cluster = self.src.cluster
        if cluster is not None:
            if cluster.obs is not None:
                cluster.obs.record_run_start(self)
            if cluster.flight is not None and self.src is not self.dst:
                # Local copies (src is dst) move through the memcpy channel
                # on the per-block path and record nothing there; mirroring
                # that keeps on/off recordings semantically identical.
                self._flight = cluster.flight
                self._flight_key = f"n{self.src.node_id}>n{self.dst.node_id}"
                self._flight_flow = (
                    self.flow.flow_id if self.flow is not None else "untagged"
                )
                self._flight.phase(
                    self._flight_key, f"coalesce_start/{type(self).__name__}/{self.n}"
                )
        for resource, _sched in self.links:
            resource.add_virtual_hold(self)
        self.src.on_failure(self._on_peer_failure)
        if self.dst is not self.src:
            self.dst.on_failure(self._on_peer_failure)
        self._listening = True
        if self.entry is not None:
            self.schedule = InflightSchedule(self.entry, self.base, self.arr, self)
            self.entry._begin_inflight(self.schedule)
        if self.src_schedule is not None:
            self.src_schedule.dependents.append(self)

    def _detach(self) -> None:
        if self.src_schedule is not None:
            try:
                self.src_schedule.dependents.remove(self)
            except ValueError:
                pass
            self.src_schedule = None
        # Unconditional: a materialized run already removed its holds (the
        # removal is idempotent), but an *undisturbed* run reaches here in
        # the _DONE state with its holds still attached — leaving them would
        # wedge `coalesce_eligible` (non-empty ``_virtual``) for every later
        # run on these links.
        for resource, _sched in self.links:
            resource.remove_virtual_hold(self)
        if self._synthetic:
            self._release_synthetic()
        if self._listening:
            self._listening = False
            self.src.remove_failure_listener(self._on_peer_failure)
            if self.dst is not self.src:
                self.dst.remove_failure_listener(self._on_peer_failure)
        if self.schedule is not None:
            self.schedule.close()
            self.schedule = None
        self._wake = None
        if self._obs_span is not None:
            self._obs_span.finish(
                "resplit" if self.state == _MATERIALIZED else "ok"
            )
            self._obs_span = None

    def _release_synthetic(self) -> None:
        self._synthetic = False
        for resource, _sched in self.links:
            resource._in_use -= 1
        for resource, _sched in self.links:
            resource._grant()

    def _account_full(self, count: int) -> None:
        """Link-account blocks ``[_accounted, count)`` at their full hold."""
        prof = self.sim.host_prof
        if prof is not None:
            prof.enter(self._prof_cat)
        flow = self.flow
        flight = self._flight
        for j in range(self._accounted, count):
            nbytes, hold = self.sizes[j], self.tx[j]
            for _resource, sched in self.links:
                if sched is not None:
                    sched.account(flow, nbytes, hold)
            if flight is not None:
                detail = f"{self._flight_flow}/{nbytes}"
                flight.record(self.s[j], "grant", self._flight_key, detail)
                flight.record(self.e[j], "release", self._flight_key, detail)
        self._accounted = max(self._accounted, count)
        if prof is not None:
            prof.exit()

    def _account_partial(self, j: int, hold: float) -> None:
        """One block released mid-transmission (interrupt semantics)."""
        for _resource, sched in self.links:
            if sched is not None:
                sched.account(self.flow, self.sizes[j], hold)
        flight = self._flight
        if flight is not None:
            detail = f"{self._flight_flow}/{self.sizes[j]}"
            flight.record(self.s[j], "grant", self._flight_key, detail)
            flight.record(self.s[j] + hold, "release", self._flight_key, detail)
        self._accounted = max(self._accounted, j + 1)

    def _deliver(self, count: int) -> None:
        """Store accounting + destination marks for the first ``count`` blocks.

        Must run after the inflight schedule is closed so the marks write
        through to the stored counter (and fire any re-registered waiters).
        """
        prof = self.sim.host_prof
        if prof is not None:
            prof.enter(self._prof_cat)
        loc = self.sim.locality
        if loc is not None:
            loc.arrival(self.src.node_id, self.dst.node_id, count)
        if self.schedule is not None:
            self.schedule.close()
            self.schedule = None
        account_out, account_in = self.account_out, self.account_in
        entry, base = self.entry, self.base
        flight = self._flight
        for j in range(count):
            nbytes = self.sizes[j]
            if account_out is not None:
                account_out(nbytes)
            if account_in is not None:
                account_in(nbytes)
            if entry is not None:
                entry.mark_block_ready(base + j)
            if flight is not None:
                flight.record(
                    self.arr[j],
                    "arrive",
                    self._flight_key,
                    f"{self._flight_flow}/{nbytes}",
                )
        if prof is not None:
            prof.exit()

    # -- the driver --------------------------------------------------------
    def run(self) -> Generator:
        """Generator driven from the owning process; returns blocks completed.

        Raises :class:`NodeFailedError` at exactly the simulated time the
        per-block chain would have surfaced a peer failure.  On a contest it
        returns after the current block's boundary; the caller's per-block
        loop takes over from there.
        """
        sim = self.sim
        if not self.preattached:
            self._attach()
        try:
            end = self.arr[-1]
            while self.state == _VIRTUAL and sim._now < end:
                yield self._sleep(end)
                self._wake = None
            if self.state == _VIRTUAL:
                # Undisturbed: everything happened as precomputed.
                self.state = _DONE
                self._account_full(self.n)
                self._deliver(self.n)
                return self.n

            # Re-split at block ``i``.  Walk its remaining boundary exactly
            # like the per-block chain: transmit to e_i (holding the links),
            # release, propagate to arr_i, then hand back to the caller.
            i = self.cur
            if i < 0:
                # Disturbed while still waiting for the first source block:
                # nothing moved, nothing to account.
                self.state = _DONE
                self._deliver(0)
                return 0
            if self.in_tx:
                while sim._now < self.e[i]:
                    yield self._sleep(self.e[i])
                    self._wake = None
                self._account_full(i + 1)
                self._release_synthetic()
                if not self.src.alive or not self.dst.alive:
                    self.state = _DONE
                    self._deliver(i)
                    dead = self.src if not self.src.alive else self.dst
                    raise NodeFailedError(f"node {dead.node_id} is down", node=dead)
            while sim._now < self.arr[i]:
                yield self._sleep(self.arr[i])
                self._wake = None
            self._account_full(i + 1)
            self.state = _DONE
            if not self.post_arrival and not self.dst.alive:
                # The per-block chain's final liveness check at arr_i.  (If
                # the disturbance came after arr_i — a cascaded run parked
                # waiting for its next source block — that check already
                # passed back then, so a later dst death surfaces through
                # the per-block loop, not here.)
                self._deliver(i)
                raise NodeFailedError(f"node {self.dst.node_id} is down", node=self.dst)
            self._deliver(i + 1)
            return i + 1
        finally:
            if self.state != _DONE:
                # Unwound mid-run (the owning process was interrupted or the
                # generator closed while asleep): replicate the accounting a
                # per-block chain torn down at this instant would show —
                # completed blocks in full, a current transmission window
                # released early at a partial hold, marks only for blocks
                # that actually arrived.
                self._on_unwind()
                now = sim._now
                cap = self.cur if self.state == _MATERIALIZED else self.n - 1
                i = bisect_right(self.s, now) - 1
                if i > cap:  # pragma: no cover - defensive
                    i = cap
                if i >= 0:
                    if now < self.e[i]:
                        self._account_full(i)
                        if self._accounted <= i:
                            self._account_partial(i, now - self.s[i])
                    else:
                        self._account_full(i + 1)
                arrived = bisect_right(self.arr, now)
                if arrived > cap:
                    arrived = cap
                if arrived < 0:
                    arrived = 0
                self.state = _DONE
                if self.schedule is not None:
                    self.schedule.truncate(
                        arrived + (self.base - self.schedule.base)
                    )
                self._deliver(arrived)
            self._detach()


#: module-level kill switch (tests use it to A/B the fast path against the
#: per-block reference on identical scenarios).
ENABLED = True


def register_stream(
    links: Sequence[tuple["Resource", object]], handle: object = None
) -> None:
    """Announce a multi-block transfer stream on its claim set.

    Every multi-block loop (pulls, whole-object sends, reduce partial
    streams, segmented static chains, local copies) brackets itself with
    ``register_stream`` / ``unregister_stream``.  Two purposes:

    * a coalesced run starts only on links it has to itself
      (:func:`coalesce_eligible` checks ``_streams == 1``) — per-block
      streams sharing a link interleave block-by-block in an order set by
      event-queue history, which a coalesced schedule cannot reproduce;
    * a *new* stream materializes any standing coalesced run on its links
      before taking its first action, so the run re-splits to per-block
      granularity before the interleaving begins.

    A *convoy-capable* stream (see :mod:`repro.net.convoy`) passes its
    :class:`~repro.net.convoy.StreamHandle`, which lets convoy formation
    enumerate and conscript the streams sharing a contended link.  Opaque
    streams (no handle) bar convoy formation on their links but behave
    identically otherwise.  Registration also stamps the link's quiet
    clock: a link whose stream set changed recently is churning, and a
    convoy over it would re-split immediately.
    """
    for resource, _sched in links:
        resource._streams += 1
        resource._joined_at = resource.sim._now
        if handle is not None:
            resource._handles.append(handle)
        if resource._virtual:
            resource._materialize_virtual()


def unregister_stream(
    links: Sequence[tuple["Resource", object]], handle: object = None
) -> None:
    # Departure is never a disturbance: a leaving stream has no pending
    # requests (its last release already triggered the grant scans), so no
    # standing run's plan can be invalidated by it.
    for resource, _sched in links:
        resource._streams -= 1
        if handle is not None:
            try:
                resource._handles.remove(handle)
            except ValueError:  # pragma: no cover - defensive
                pass


class ComputeRun:
    """A streaming compute loop (reduce slot) as one timeline event.

    The reduce slot's inner loop — wait for every input to reach block ``k``,
    pay the combine time, mark the output block — holds no resources at all:
    its entire timeline is arithmetic once each input's availability times
    are known (``ready_times``: already-present blocks at 0.0, future blocks
    at their scheduled arrival).  Mark time recurrence, identical to the
    per-block loop's float sequence::

        t_k = max(t_{k-1}, ready_k) + compute_k

    The output entry carries an :class:`InflightSchedule` over the ``t_k``,
    so downstream consumers (the parent's partial stream) read and cascade
    on it exactly as they do on a transfer run.  Disturbances:

    * an *input* schedule truncates -> finish the block in flight (its input
      provably arrived) and hand back to the per-block loop;
    * the *slot's own node* fails -> the per-block loop only notices at its
      next wait-with-nothing-to-wait-for, so the run continues marking until
      the first genuine wait after the failure, then stops there with
      ``failure_stop`` set (the caller returns, as the per-block loop does);
    * an interrupt -> marks whose times have passed stand, the rest are
      dropped.
    """

    __slots__ = (
        "sim",
        "node",
        "entry",
        "base",
        "n",
        "t",
        "s",
        "schedule",
        "input_schedules",
        "state",
        "cur",
        "end_at",
        "mark_limit",
        "failure_stop",
        "_wake",
        "_listening",
    )

    def __init__(
        self,
        sim: Simulator,
        node: "Node",
        entry: "StoredObject",
        base: int,
        compute_times: Sequence[float],
        ready_times: Sequence[float],
        input_schedules: Sequence[InflightSchedule],
    ):
        self.sim = sim
        self.node = node
        self.entry = entry
        self.base = base
        self.n = len(compute_times)
        s: list[float] = []
        t: list[float] = []
        prev = sim._now
        for k in range(self.n):
            ready = ready_times[k]
            start = ready if ready > prev else prev
            s.append(start)
            prev = start + compute_times[k]
            t.append(prev)
        self.s = s
        self.t = t
        self.schedule: Optional[InflightSchedule] = None
        self.input_schedules = list(input_schedules)
        self.state = _VIRTUAL
        self.cur = 0
        self.end_at = t[-1]
        self.mark_limit = self.n
        self.failure_stop = False
        self._wake: Optional[Event] = None
        self._listening = False

    # -- disturbance handling ---------------------------------------------
    def _materialize(self) -> None:
        """An input schedule truncated: stop after the block in flight."""
        if self.state != _VIRTUAL:
            return
        now = self.sim._now
        done = bisect_right(self.t, now)
        if done >= self.n:  # pragma: no cover - end already reached
            return
        self.state = _MATERIALIZED
        if now < self.s[done]:
            # Waiting for input ``done`` — its scheduled arrival is now
            # uncertain, so nothing more happens in this run.
            self.cur = done
            self.end_at = now
        else:
            # Mid-compute: the inputs of block ``done`` arrived for real;
            # finish it at its boundary, then hand back.
            self.cur = done + 1
            self.end_at = self.t[done]
        self.mark_limit = self.cur
        if self.schedule is not None:
            self.schedule.truncate(done)
        wake = self._wake
        if wake is not None and wake._ok is None:
            wake.succeed()

    def _on_node_failure(self, _node: "Node") -> None:
        """The slot's node died: run on until the first genuine wait."""
        if self.state != _VIRTUAL:
            return
        now = self.sim._now
        done = bisect_right(self.t, now)
        if done >= self.n:  # pragma: no cover - end already reached
            return
        if now < self.s[done]:
            # Inside a wait: the per-block race fires right now.
            stop = done
            end = now
        else:
            # Inside (or exactly at the end of) a compute: keep going until
            # the next block whose inputs are not yet there.
            stop = None
            for k in range(done + 1, self.n):
                if self.s[k] > self.t[k - 1]:
                    stop = k
                    end = self.t[k - 1]
                    break
            if stop is None:
                return  # no further waits: the run completes as scheduled
        self.state = _MATERIALIZED
        self.failure_stop = True
        self.cur = stop
        self.end_at = end
        self.mark_limit = stop
        if self.schedule is not None:
            self.schedule.truncate(stop)
        wake = self._wake
        if wake is not None and wake._ok is None:
            wake.succeed()

    # -- plumbing ----------------------------------------------------------
    def _sleep(self, target: float) -> Event:
        wake = Event(self.sim)
        self._wake = wake
        trigger = self.sim.wake_at(target)
        trigger.callbacks = [lambda _ev, wake=wake: self._fire(wake)]
        loc = self.sim.locality
        if loc is not None:
            # Compute-slot wake-ups never leave the owning node.
            loc.tag(trigger, self.node.node_id)
            loc.tag(wake, self.node.node_id)
        return wake

    def _fire(self, wake: Event) -> None:
        if wake is self._wake and wake._ok is None:
            wake.succeed()

    def _deliver(self, count: int) -> None:
        if self.schedule is not None:
            if count < self.n:
                self.schedule.truncate(count)
            self.schedule.close()
            self.schedule = None
        entry, base = self.entry, self.base
        if entry is not None:
            for k in range(count):
                entry.mark_block_ready(base + k)

    def run(self) -> Generator:
        sim = self.sim
        cluster = self.node.cluster
        obs = cluster.obs if cluster is not None else None
        span = obs.record_compute_run(self) if obs is not None else None
        self.schedule = InflightSchedule(self.entry, self.base, self.t, self)
        self.entry._begin_inflight(self.schedule)
        for input_schedule in self.input_schedules:
            input_schedule.dependents.append(self)
        self.node.on_failure(self._on_node_failure)
        self._listening = True
        delivered = None
        try:
            while sim._now < self.end_at:
                yield self._sleep(self.end_at)
                self._wake = None
            delivered = self.mark_limit if self.state != _VIRTUAL else self.n
            self.state = _DONE
            self._deliver(delivered)
            return delivered
        finally:
            if delivered is None:
                # Interrupted while asleep: past marks stand, rest dropped.
                self.state = _DONE
                self._deliver(bisect_right(self.t, sim._now))
            if self._listening:
                self._listening = False
                self.node.remove_failure_listener(self._on_node_failure)
            for input_schedule in self.input_schedules:
                try:
                    input_schedule.dependents.remove(self)
                except ValueError:
                    pass
            if self.schedule is not None:  # pragma: no cover - defensive
                self.schedule.close()
                self.schedule = None
            if span is not None:
                span.finish("ok" if self.mark_limit >= self.n else "resplit")


def input_coverage(entry: "StoredObject", upto: int) -> int:
    """How many blocks of ``entry`` have known present-or-scheduled times.

    Counts from the start of the object: present blocks, plus — while a
    coalesced/compute run streams into the entry — blocks with scheduled
    arrival times.  Capped at ``upto``.
    """
    if entry.sealed:
        return upto
    ready = entry.blocks_ready
    inflight = entry._inflight
    if inflight is not None and not entry._no_coalesce:
        scheduled = inflight.base + inflight.limit
        if scheduled > ready:
            ready = scheduled
    return ready if ready < upto else upto


def ready_time_of(entry: "StoredObject", block: int) -> float:
    """Absolute time block ``block`` of ``entry`` is (or will be) present."""
    if entry.sealed or entry.blocks_ready > block:
        return 0.0
    inflight = entry._inflight
    return inflight.arrivals[block - inflight.base]


def coalesce_eligible(
    links: Sequence[tuple["Resource", object]], src: "Node", dst: "Node"
) -> bool:
    """Whether a run can start right now: exclusive, idle, live endpoints."""
    if not ENABLED:
        return False
    if not (src.alive and dst.alive):
        return False
    for resource, _sched in links:
        if (
            resource._streams > 1
            or resource._waiting
            or resource._virtual
            or resource._in_use >= resource.capacity
        ):
            return False
    return True


def build_pull_run(
    config,
    src: "Node",
    dst: "Node",
    flow: Optional["Flow"],
    links: Sequence[tuple["Resource", Optional["LinkScheduler"]]],
    source_entry: "StoredObject",
    entry: "StoredObject",
    block_index: int,
    horizon: int,
    local_copy: bool = False,
    account_out: Optional[Callable[[int], None]] = None,
    account_in: Optional[Callable[[int], None]] = None,
) -> CoalescedRun:
    """The coalesced run for blocks ``[block_index, horizon)`` of one pull.

    Shared by the broadcast pull loop and the reduce partial stream: derives
    the relay cascade (``ready_times`` from the source's in-flight schedule
    for blocks it has not produced yet), the per-block sizes/times (NIC path
    or local memcpy), and wires the destination entry for arithmetic marks.
    The caller has already checked :func:`coalesce_eligible`,
    ``entry._no_coalesce``, and that ``horizon - block_index >= 2``.
    """
    from repro.net.flowsched import path_latency, path_transmission_time

    prof = dst.sim.host_prof
    if prof is not None:
        prof.enter("coalesce")
    avail = min(source_entry.blocks_ready, horizon)
    src_schedule = source_entry._inflight if horizon > avail else None
    ready_times = None
    if src_schedule is not None:
        arrivals = src_schedule.arrivals
        src_base = src_schedule.base
        ready_times = [
            0.0 if idx < avail else arrivals[idx - src_base]
            for idx in range(block_index, horizon)
        ]
    sizes = [config.block_bytes(entry.size, j) for j in range(block_index, horizon)]
    if local_copy:
        tx = [config.memcpy_time(nb) for nb in sizes]
        latency = 0.0
    else:
        tx = [path_transmission_time(config, src, dst, nb) for nb in sizes]
        latency = path_latency(config, src, dst)
    run = CoalescedRun(
        dst.sim,
        src,
        dst,
        flow,
        sizes,
        tx,
        latency,
        links,
        entry=entry,
        base=block_index,
        account_out=account_out,
        account_in=account_in,
        ready_times=ready_times,
        src_schedule=src_schedule,
    )
    if prof is not None:
        prof.exit()
    return run


def nic_path_links(
    src: "Node", dst: "Node"
) -> list[tuple["Resource", Optional["LinkScheduler"]]]:
    """The claim set of one ``src -> dst`` block, with accounting scheds."""
    links: list[tuple["Resource", Optional["LinkScheduler"]]] = [
        (src.uplink, src.uplink_sched),
        (dst.downlink, dst.downlink_sched),
    ]
    fabric = src.cluster.fabric if src.cluster is not None else None
    if fabric is not None:
        for link in fabric.path_links(src.node_id, dst.node_id):
            links.append((link.resource, link.sched))
    return links
