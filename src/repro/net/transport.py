"""Block-granularity data movement between nodes and inside nodes.

The transfer primitives are generator functions meant to be driven by the
simulation kernel (``yield from transfer_bytes(...)`` inside a process).

Model
-----
Moving ``nbytes`` from node A to node B:

1. the bytes are split into blocks of at most ``block_size``;
2. each block is **admitted** by the flow scheduler
   (:mod:`repro.net.flowsched`): a reservation claims A's uplink slot and
   B's downlink slot atomically, granted only when both are free at the same
   instant;
3. the granted block occupies both slots for the serialization time
   ``block / bandwidth`` (cut-through, bottleneck at the NIC rate), then
   arrives after one extra propagation ``latency``.

Because a pending reservation holds nothing, a sender whose flow toward one
busy receiver is still queued keeps serving its flows toward idle receivers
— there is no head-of-line blocking — and because claims are atomic the
resource graph cannot deadlock.  Concurrent transfers that share a NIC
direction interleave block by block, which approximates TCP fair sharing
and — more importantly for this paper — reproduces the sender-side
bottleneck of naive broadcast and the receiver-side bottleneck of flat
(d = n) reduce.  Transfers carry :class:`~repro.net.flowsched.Flow` metadata
(a flow id for per-flow bandwidth accounting and a priority class ordering
control > reduce-partial > bulk in the admission queues).

Setting ``NetworkConfig.flow_scheduling = False`` restores the legacy
sequential acquisition (uplink first, then queue on the downlink while
holding it) as an ablation.

Zero-byte moves — remote or local — complete immediately at the current
simulated time: no link slot, no serialization, no propagation latency, the
same contract for :func:`transfer_bytes` and :func:`local_copy`.

Failures
--------
If either endpoint fails, in-flight and future blocks of the transfer raise
:class:`TransferError`; a reservation still waiting for admission is
cancelled (withdrawn from every queue) first.  The failure-*detection* delay
is modelled where the paper's protocols pay it: in the retry loops of the
layers above, which sleep ``failure_detection_delay`` before re-resolving a
source — exactly like a broken TCP connection being noticed by its peer.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Generator, Optional

from repro.net.coalesce import (
    CoalescedRun,
    coalesce_eligible,
    nic_path_links,
    register_stream,
    unregister_stream,
)
from repro.net.config import NetworkConfig
from repro.net.errors import NodeFailedError, TransferError, _check_alive
from repro.net.flowsched import (
    ADOPTED,
    DEFAULT_FLOW,
    PHASE_ADMIT,
    PHASE_TX,
    Flow,
    FlowTransport,
    path_latency,
    path_transmission_time,
)
from repro.net.node import Node

__all__ = [
    "TransferError",
    "NodeFailedError",
    "transfer_block",
    "transfer_bytes",
    "local_copy",
    "local_copy_block",
    "control_rpc",
]


@lru_cache(maxsize=64)
def _flow_transport(config: NetworkConfig) -> FlowTransport:
    """One stateless FlowTransport per config (it was allocated per block)."""
    return FlowTransport(config)


def transfer_block(
    config: NetworkConfig,
    src: Node,
    dst: Node,
    nbytes: int,
    flow: Optional[Flow] = None,
    handle=None,
) -> Generator:
    """Move a single block from ``src`` to ``dst``.

    Returns (via StopIteration) the simulated time at which the block is
    fully available at the destination — or :data:`~repro.net.flowsched.ADOPTED`
    when ``handle`` (a convoy stream handle, flow-scheduling only) was
    conscripted by a convoy formation while the block waited for admission.
    """
    if config.flow_scheduling:
        result = yield from _flow_transport(config).transfer_block(
            src, dst, nbytes, flow, handle
        )
        return result
    result = yield from _transfer_block_sequential(config, src, dst, nbytes)
    return result


def _transfer_block_sequential(
    config: NetworkConfig,
    src: Node,
    dst: Node,
    nbytes: int,
) -> Generator:
    """Legacy acquisition order: hold the uplink, then queue on the downlink.

    Kept as the ablation behind ``NetworkConfig.flow_scheduling = False``:
    this is the path that parks a sender's uplink idle-but-held behind a
    busy receiver (head-of-line blocking).  On a hierarchical fabric the
    shared tier links on the path are acquired the same sequential way
    (after the NIC slots, in path order), so the ablation extends the
    hold-and-wait discipline to the fabric graph; the acquisition order is
    identical for every transfer, which keeps it deadlock-free.
    """
    sim = src.sim
    _check_alive(src, dst)
    fabric = src.cluster.fabric if src.cluster is not None else None
    path = fabric.path_links(src.node_id, dst.node_id) if fabric is not None else ()
    up_req = src.uplink.request()
    try:
        yield up_req
        _check_alive(src, dst)
        down_req = dst.downlink.request()
        try:
            yield down_req
            _check_alive(src, dst)
            tier_reqs = []
            try:
                for link in path:
                    req = link.resource.request()
                    tier_reqs.append((link, req))
                    yield req
                    _check_alive(src, dst)
                yield sim.timeout(path_transmission_time(config, src, dst, nbytes))
                _check_alive(src, dst)
            finally:
                for link, req in tier_reqs:
                    link.resource.release(req)
        finally:
            dst.downlink.release(down_req)
    finally:
        src.uplink.release(up_req)
    yield sim.timeout(path_latency(config, src, dst))
    _check_alive(dst)
    return sim.now


def transfer_bytes(
    config: NetworkConfig,
    src: Node,
    dst: Node,
    nbytes: int,
    flow: Optional[Flow] = None,
) -> Generator:
    """Move ``nbytes`` from ``src`` to ``dst`` as a sequence of blocks.

    This is the non-pipelined building block: the caller observes completion
    only once every block has arrived.  Pipelined consumers drive
    :func:`transfer_block` themselves so they can observe per-block progress.
    Zero-byte moves complete immediately (see the module docstring).
    """
    sim = src.sim
    if nbytes <= 0:
        _check_alive(src, dst)
        return sim.now
    total_blocks = config.num_blocks(nbytes)
    links = nic_path_links(src, dst)
    register_stream(links)
    try:
        index = 0
        while index < total_blocks:
            # Coalesced fast path: the rest of the object in one timeline
            # event when this stream has the whole path to itself (see
            # net/coalesce for the exactness argument); any disturbance
            # re-splits back to per-block.
            if config.flow_scheduling and total_blocks - index >= 2:
                if coalesce_eligible(links, src, dst):
                    sizes = [
                        config.block_bytes(nbytes, i) for i in range(index, total_blocks)
                    ]
                    run = CoalescedRun(
                        sim,
                        src,
                        dst,
                        flow or DEFAULT_FLOW,
                        sizes,
                        [path_transmission_time(config, src, dst, nb) for nb in sizes],
                        path_latency(config, src, dst),
                        links,
                    )
                    index += yield from run.run()
                    continue
            yield from transfer_block(
                config, src, dst, config.block_bytes(nbytes, index), flow
            )
            index += 1
    finally:
        unregister_stream(links)
    return sim.now


def local_copy_block(
    config: NetworkConfig, node: Node, nbytes: int, handle=None
) -> Generator:
    """Copy one block between a worker and the local object store.

    ``handle`` follows the same convoy contract as :func:`transfer_block`:
    phases kept current, a preplaced request consumed, and
    :data:`~repro.net.flowsched.ADOPTED` returned when a formation withdrew
    the queued request.
    """
    sim = node.sim
    _check_alive(node)
    if handle is not None and handle.preplaced is not None:
        req = handle.preplaced
        handle.preplaced = None
    else:
        req = node.memcpy_channel.request()
    if handle is not None:
        handle.phase = PHASE_ADMIT
        handle.request = req
    try:
        yield req
        if handle is not None and handle.poked:
            handle.poked = False
            return ADOPTED
        _check_alive(node)
        copy_t = config.memcpy_time(nbytes)
        if handle is not None:
            handle.phase = PHASE_TX
            handle.tx_end = sim._now + copy_t
        yield sim.timeout(copy_t)
        _check_alive(node)
    finally:
        node.memcpy_channel.release(req)
        if handle is not None:
            handle.request = None
    return sim.now


def local_copy(config: NetworkConfig, node: Node, nbytes: int) -> Generator:
    """Copy ``nbytes`` between a worker and the local store, block by block.

    Zero-byte copies complete immediately — the same contract as
    :func:`transfer_bytes`.
    """
    sim = node.sim
    if nbytes <= 0:
        _check_alive(node)
        return sim.now
    total_blocks = config.num_blocks(nbytes)
    links = [(node.memcpy_channel, None)]
    register_stream(links)
    try:
        index = 0
        while index < total_blocks:
            if total_blocks - index >= 2 and coalesce_eligible(links, node, node):
                sizes = [
                    config.block_bytes(nbytes, i) for i in range(index, total_blocks)
                ]
                run = CoalescedRun(
                    sim,
                    node,
                    node,
                    None,
                    sizes,
                    [config.memcpy_time(nb) for nb in sizes],
                    0.0,
                    links,
                )
                index += yield from run.run()
                continue
            yield from local_copy_block(config, node, config.block_bytes(nbytes, index))
            index += 1
    finally:
        unregister_stream(links)
    return sim.now


def control_rpc(config: NetworkConfig, src: Node, dst: Node) -> Generator:
    """A small control-plane round trip (directory query, notification).

    Control messages ride the latency path only (they never contend for the
    bulk link slots), which is exactly the CONTROL > data ordering of the
    flow classes; the round trip is recorded in the sender's flow accounting
    so utilization reports see the control plane.
    """
    sim = src.sim
    _check_alive(src, dst)
    if src.node_id == dst.node_id:
        # Local shard access still pays a (smaller) IPC cost.
        yield sim.timeout(config.rpc_latency / 4.0)
    else:
        src.uplink_sched.record_control()
        yield sim.timeout(config.rpc_latency)
    _check_alive(src, dst)
    return sim.now
