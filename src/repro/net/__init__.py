"""Simulated cluster and network substrate.

The paper evaluates Hoplite on a 16-node AWS cluster with uniform 10 Gbps
networking.  This package provides the equivalent substrate as a
discrete-event model: a :class:`~repro.net.cluster.Cluster` of
:class:`~repro.net.node.Node` objects whose NICs are modelled as serialized
per-direction bandwidth pipes, plus block-granularity transfers, in-node
memory-copy channels, and failure injection.

All timing in the simulator derives from the
:class:`~repro.net.config.NetworkConfig` parameters (bandwidth, propagation
latency, RPC latency, memory-copy bandwidth, block size), which are exactly
the quantities the paper's analytical model (Section 3.4.2) reasons about.
"""

from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.net.flowsched import Flow, FlowClass, FlowTransport, LinkScheduler, Reservation
from repro.net.node import Node
from repro.net.topology import Fabric, FabricLink, Topology
from repro.net.transport import NodeFailedError, TransferError, transfer_bytes

__all__ = [
    "Cluster",
    "Fabric",
    "FabricLink",
    "Flow",
    "FlowClass",
    "FlowTransport",
    "LinkScheduler",
    "NetworkConfig",
    "Node",
    "NodeFailedError",
    "Reservation",
    "Topology",
    "TransferError",
    "transfer_bytes",
]
