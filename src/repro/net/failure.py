"""Failure-injection helpers layered over the cluster's failure primitives."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.net.cluster import Cluster


@dataclass(frozen=True)
class FailureEvent:
    """One planned node failure (and optional recovery)."""

    node_id: int
    fail_at: float
    recover_at: Optional[float] = None


def schedule(cluster: Cluster, events: Sequence[FailureEvent]) -> None:
    """Install a list of failure events on the cluster."""
    for event in events:
        cluster.schedule_failure(event.node_id, event.fail_at, event.recover_at)


def poisson_failures(
    node_ids: Sequence[int],
    rate_per_second: float,
    horizon: float,
    downtime: float,
    seed: int = 0,
) -> list[FailureEvent]:
    """Generate a random failure schedule (Poisson arrivals, fixed downtime).

    Useful for stress tests that go beyond the paper's single-failure
    experiment: every generated failure hits a random node and recovers
    ``downtime`` seconds later.
    """
    if rate_per_second < 0:
        raise ValueError("rate_per_second must be non-negative")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    rng = np.random.RandomState(seed)
    events: list[FailureEvent] = []
    time = 0.0
    if rate_per_second == 0:
        return events
    while True:
        time += float(rng.exponential(1.0 / rate_per_second))
        if time >= horizon:
            break
        node_id = int(rng.choice(list(node_ids)))
        events.append(
            FailureEvent(node_id=node_id, fail_at=time, recover_at=time + downtime)
        )
    return events


@dataclass(frozen=True)
class ControlPlaneFailureEvent:
    """One planned control-plane kill: a directory shard or the lineage service.

    The ``control_plane`` fault class is orthogonal to node failures: it
    kills *service state* (a hash-sharded directory shard, or the
    orchestrator's lineage/ownership tables), which then recovers by WAL
    replay rather than by lineage re-execution of data tasks.
    """

    #: ``"directory_shard"`` or ``"lineage"``.
    target: str
    fail_at: float
    #: which shard dies (``directory_shard`` only; taken modulo the count).
    shard_id: int = 0


def schedule_control_plane(
    sim,
    events: Sequence[ControlPlaneFailureEvent],
    directory=None,
    orchestrator=None,
) -> None:
    """Install control-plane kill events against live service objects.

    Targets without a matching service (no orchestrator attached, say) are
    skipped, so one schedule works across scenario variants.
    """

    def _killer(event: ControlPlaneFailureEvent):
        yield sim.timeout(event.fail_at)
        if event.target == "directory_shard":
            if directory is not None and directory.shards:
                directory.fail_shard(event.shard_id % len(directory.shards))
        elif event.target == "lineage":
            if orchestrator is not None:
                orchestrator.kill_control_plane()
        else:  # pragma: no cover - schedule construction error
            raise ValueError(f"unknown control-plane target {event.target!r}")

    for event in events:
        sim.process(
            _killer(event), name=f"ctlfail-{event.target}-{event.shard_id}"
        )


def poisson_control_plane_failures(
    num_shards: int,
    rate_per_second: float,
    horizon: float,
    seed: int = 0,
    include_lineage: bool = True,
) -> list[ControlPlaneFailureEvent]:
    """Seeded Poisson arrivals of control-plane kills (the new fault class).

    Each arrival targets a uniformly random victim among the directory
    shards plus (optionally) the lineage service.
    """
    if rate_per_second < 0:
        raise ValueError("rate_per_second must be non-negative")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    rng = np.random.RandomState(seed)
    events: list[ControlPlaneFailureEvent] = []
    time = 0.0
    if rate_per_second == 0:
        return events
    victims = num_shards + (1 if include_lineage else 0)
    while True:
        time += float(rng.exponential(1.0 / rate_per_second))
        if time >= horizon:
            break
        pick = int(rng.randint(victims))
        if pick < num_shards:
            events.append(
                ControlPlaneFailureEvent("directory_shard", time, shard_id=pick)
            )
        else:
            events.append(ControlPlaneFailureEvent("lineage", time))
    return events


def alternating_failures(
    node_ids: Sequence[int],
    period: float,
    downtime: float,
    count: int,
    start: float = 0.0,
) -> Iterator[FailureEvent]:
    """A deterministic round-robin failure schedule (one node down at a time)."""
    if period <= 0 or downtime < 0:
        raise ValueError("period must be positive and downtime non-negative")
    for index in range(count):
        node_id = node_ids[index % len(node_ids)]
        fail_at = start + index * period
        yield FailureEvent(node_id=node_id, fail_at=fail_at, recover_at=fail_at + downtime)
