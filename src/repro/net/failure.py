"""Failure-injection helpers layered over the cluster's failure primitives."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.net.cluster import Cluster


@dataclass(frozen=True)
class FailureEvent:
    """One planned node failure (and optional recovery)."""

    node_id: int
    fail_at: float
    recover_at: Optional[float] = None


def schedule(cluster: Cluster, events: Sequence[FailureEvent]) -> None:
    """Install a list of failure events on the cluster."""
    for event in events:
        cluster.schedule_failure(event.node_id, event.fail_at, event.recover_at)


def poisson_failures(
    node_ids: Sequence[int],
    rate_per_second: float,
    horizon: float,
    downtime: float,
    seed: int = 0,
) -> list[FailureEvent]:
    """Generate a random failure schedule (Poisson arrivals, fixed downtime).

    Useful for stress tests that go beyond the paper's single-failure
    experiment: every generated failure hits a random node and recovers
    ``downtime`` seconds later.
    """
    if rate_per_second < 0:
        raise ValueError("rate_per_second must be non-negative")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    rng = np.random.RandomState(seed)
    events: list[FailureEvent] = []
    time = 0.0
    if rate_per_second == 0:
        return events
    while True:
        time += float(rng.exponential(1.0 / rate_per_second))
        if time >= horizon:
            break
        node_id = int(rng.choice(list(node_ids)))
        events.append(
            FailureEvent(node_id=node_id, fail_at=time, recover_at=time + downtime)
        )
    return events


def alternating_failures(
    node_ids: Sequence[int],
    period: float,
    downtime: float,
    count: int,
    start: float = 0.0,
) -> Iterator[FailureEvent]:
    """A deterministic round-robin failure schedule (one node down at a time)."""
    if period <= 0 or downtime < 0:
        raise ValueError("period must be positive and downtime non-negative")
    for index in range(count):
        node_id = node_ids[index % len(node_ids)]
        fail_at = start + index * period
        yield FailureEvent(node_id=node_id, fail_at=fail_at, recover_at=fail_at + downtime)
