"""Reservation-based flow scheduling for NIC links.

This is the admission layer between the collective protocols and the raw
uplink/downlink resources.  The sequential-acquisition transport (hold the
sender's uplink, then queue on the receiver's downlink) parks a sender's NIC
idle-but-held whenever its receiver is busy — the head-of-line blocking that
kept Hoplite's alltoall at ~1.5x of the pipelined bound while ring baselines
reached ~1.0x.  Real transports avoid this with per-flow queueing and
admission at the bottleneck (flow-queuing AQM, receiver-driven admission);
this module reproduces that discipline for the simulated NICs:

* every block transfer is a :class:`Reservation` — a cancellable claim on
  **both** the source uplink slot and the destination downlink slot, granted
  atomically only when the two are simultaneously free (a matching on the
  bipartite uplink/downlink graph, built on
  :class:`~repro.sim.resources.MultiRequest`);
* a sender whose flow toward one busy receiver is waiting keeps serving its
  flows toward idle receivers — pending reservations never hold capacity;
* flows carry metadata: a ``flow_id`` for per-flow bandwidth accounting and a
  :class:`FlowClass` priority (control > reduce-partial > bulk) that orders
  the admission queues, so reduce partials cut ahead of bulk broadcast
  traffic when both contend for a link;
* each NIC direction has a :class:`LinkScheduler` that owns the admission
  queue of its link and accumulates per-flow / per-class byte counts and
  busy time for the utilization reports in :mod:`repro.bench.scenarios`.

:class:`FlowTransport` is the facade: ``transfer_block`` / ``transfer_bytes``
generators compatible with the legacy :mod:`repro.net.transport` signatures
(which now delegate here), plus explicit ``reserve`` for protocols that want
to manage reservation lifetimes themselves.

Failure semantics match the legacy transport: a dead endpoint raises
:class:`~repro.net.transport.TransferError`, and a reservation still waiting
for admission when its peer dies is cancelled (withdrawn from every queue)
before the error propagates, so no ghost claim survives the failure.  The
failure-detection delay stays where it always was — in the retry loops of the
protocols above — and the fault-injection matrix runs unchanged through this
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import TYPE_CHECKING, Generator, Optional

from repro.net.config import NetworkConfig
from repro.net.errors import TransferError, _check_alive
from repro.sim import Event, MultiRequest, Resource, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.node import Node


class FlowClass(IntEnum):
    """Priority classes for link admission (lower value = admitted first)."""

    CONTROL = 0
    REDUCE_PARTIAL = 1
    BULK = 2


@dataclass(frozen=True)
class Flow:
    """Metadata attached to a transfer for scheduling and accounting."""

    flow_id: str
    flow_class: FlowClass = FlowClass.BULK


#: flow used when a call site does not tag its transfer.
DEFAULT_FLOW = Flow("untagged", FlowClass.BULK)


#: Returned (via StopIteration) by handle-threaded transfers when a convoy
#: formation adopted the stream while it was parked on admission: no block
#: moved, no bytes were accounted; the caller's loop re-enters its top and
#: drives the run the formation left on its handle.
ADOPTED = object()

#: Convoy stream phases, stamped on a :class:`repro.net.convoy.StreamHandle`
#: at every parking point.  Defined here — below :mod:`repro.net.convoy` in
#: the import graph — so the transfer paths can stamp them without importing
#: the convoy machinery; convoy re-exports them under its own names.
PHASE_TOP = 0  #: at the top of its block loop
PHASE_GATE = 1  #: parked on the source entry's ``wait_for_blocks``
PHASE_ADMIT = 2  #: reservation/request queued, not granted
PHASE_TX = 3  #: holding its links until ``tx_end``
PHASE_LAT = 4  #: links released, block arrives at ``arr_at``
PHASE_RUN = 5  #: driving a coalesced/convoy run


def path_transmission_time(config: NetworkConfig, src: "Node", dst: "Node", nbytes: float) -> float:
    """Serialization time of one block at the ``src -> dst`` bottleneck rate.

    Delegates to the cluster's fabric when one exists; on the flat fabric
    (and for nodes built without a cluster) this is exactly
    ``config.transmission_time``.
    """
    fabric = src.cluster.fabric if src.cluster is not None else None
    if fabric is None:
        return config.transmission_time(nbytes)
    return fabric.transmission_time(src.node_id, dst.node_id, nbytes)


def path_latency(config: NetworkConfig, src: "Node", dst: "Node") -> float:
    """One-way propagation latency, including any per-tier extras."""
    fabric = src.cluster.fabric if src.cluster is not None else None
    if fabric is None:
        return config.latency
    return fabric.latency(src.node_id, dst.node_id)


class LinkScheduler:
    """Admission and accounting for one link direction.

    The scheduler wraps the direction's capacity
    :class:`~repro.sim.Resource`; reservations enqueue on it (ordered by
    :class:`FlowClass`, FIFO within a class) and the work-conserving grant
    scan admits the first reservation whose partner links are also free.
    One scheduler exists per NIC direction of every node and — on
    hierarchical fabrics — per shared tier link direction
    (:class:`~repro.net.topology.FabricLink`).
    """

    def __init__(self, sim: Simulator, link: Resource, direction: str):
        self.sim = sim
        self.link = link
        self.direction = direction
        #: cumulative bytes granted per flow id.
        self.bytes_by_flow: dict[str, int] = {}
        #: cumulative bytes granted per priority class.
        self.bytes_by_class: dict[FlowClass, int] = {cls: 0 for cls in FlowClass}
        #: total simulated time this link spent occupied by reservations.
        self.busy_time: float = 0.0
        #: number of reservations granted on this link.
        self.reservations_granted: int = 0
        #: control-plane messages (RPCs) sent from this direction; control
        #: traffic rides the latency path and never occupies a bulk slot.
        self.control_messages: int = 0
        #: observability children, installed by repro.obs.Observability
        #: (None = disabled: one branch per account/record_control call).
        self._obs_bytes: Optional[dict] = None
        self._obs_queue = None
        self._obs_control = None

    @property
    def queue_length(self) -> int:
        """Reservations (and legacy requests) waiting for this link."""
        return self.link.queue_length

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` this link spent transmitting."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def account(self, flow: Flow, nbytes: int, hold_time: float) -> None:
        """Record one released reservation's bytes and occupancy."""
        self.bytes_by_flow[flow.flow_id] = self.bytes_by_flow.get(flow.flow_id, 0) + nbytes
        self.bytes_by_class[flow.flow_class] += nbytes
        self.busy_time += hold_time
        self.reservations_granted += 1
        if self._obs_bytes is not None:
            self._obs_bytes[flow.flow_class].inc(nbytes)

    def record_control(self) -> None:
        """Count one control-plane message leaving through this direction."""
        self.control_messages += 1
        if self._obs_control is not None:
            self._obs_control.inc()

    def lockstep_candidates(self) -> Optional[list]:
        """Stream handles of a potential lockstep convoy on this link.

        A contended, capacity-1 link whose every registered stream published
        a convoy :class:`~repro.net.convoy.StreamHandle` is a candidate
        bottleneck for arithmetic convoy simulation; this is the
        saturation-detection half of formation (the plan validation lives in
        :func:`repro.net.convoy.maybe_form`).  Returns the handles, or
        ``None`` when the link is idle, exclusive, oversized, or carries an
        opaque (handle-less) stream.
        """
        link = self.link
        handles = link._handles
        if (
            link.capacity == 1
            and link._streams > 1
            and len(handles) == link._streams
        ):
            return list(handles)
        return None


class Reservation:
    """A cancellable claim on every link a ``src -> dst`` block crosses.

    On the flat fabric that is the (source uplink, destination downlink)
    pair; on a hierarchical fabric the claim additionally covers one slot on
    **every shared tier link on the path** (source rack uplink, zone
    aggregation links, destination rack downlink), so admission is a
    matching on the fabric graph rather than the bipartite NIC graph.  The
    whole set is granted atomically when every slot is simultaneously free;
    until then the reservation holds nothing.  ``release`` frees a granted
    claim (crediting every link scheduler's accounting) or withdraws a
    pending one; both are idempotent, so the transfer generators can release
    unconditionally in a ``finally``.
    """

    def __init__(self, src: "Node", dst: "Node", nbytes: int, flow: Flow):
        self.src = src
        self.dst = dst
        self.nbytes = int(nbytes)
        self.flow = flow
        self.sim: Simulator = src.sim
        #: submission time, for grant-wait (admission latency) observability.
        self.created_at = self.sim._now
        fabric = src.cluster.fabric if src.cluster is not None else None
        #: shared tier links on the path (empty for flat/intra-rack traffic).
        self.path = (
            fabric.path_links(src.node_id, dst.node_id) if fabric is not None else ()
        )
        claims = [(src.uplink, 1), (dst.downlink, 1)]
        claims.extend((link.resource, 1) for link in self.path)
        prof = self.sim.host_prof
        if prof is not None:
            prof.enter("flowsched")
        self.request = MultiRequest(
            self.sim,
            claims,
            priority=int(flow.flow_class),
        )
        if prof is not None:
            prof.exit()
        loc = self.sim.locality
        if loc is not None:
            # A reservation whose claim set spans shared tier links couples
            # two partitions' admission state at the same instant — the
            # zero-lookahead interaction a conservative PDES window cannot
            # hide.  Intra-rack claims stay inside the source's partition.
            if self.path:
                loc.tag_sync_reservation(self.request)
            else:
                loc.tag(self.request, src.node_id)
        self._closed = False

    @property
    def event(self) -> MultiRequest:
        """The event that fires when the claim is granted."""
        return self.request

    @property
    def granted(self) -> bool:
        return self.request.granted

    def release(self) -> None:
        """Free (or withdraw) the claim; granted holds are accounted."""
        if self._closed:
            return
        self._closed = True
        prof = self.sim.host_prof
        if prof is not None:
            prof.enter("flowsched")
        try:
            self._release_inner()
        finally:
            if prof is not None:
                prof.exit()

    def _release_inner(self) -> None:
        if self.request.granted:
            hold = self.sim.now - self.request.granted_at
            self.src.uplink_sched.account(self.flow, self.nbytes, hold)
            self.dst.downlink_sched.account(self.flow, self.nbytes, hold)
            for link in self.path:
                link.sched.account(self.flow, self.nbytes, hold)
            cluster = self.src.cluster
            if cluster is not None:
                if cluster.obs is not None:
                    cluster.obs.record_reservation(self)
                flight = cluster.flight
                if flight is not None:
                    # The semantic transfer timeline: the coalescing fast
                    # paths retrofit the same records from their boundary
                    # arrays, so on/off recordings compare equal.
                    key = f"n{self.src.node_id}>n{self.dst.node_id}"
                    detail = f"{self.flow.flow_id}/{self.nbytes}"
                    flight.record(self.request.granted_at, "grant", key, detail)
                    flight.record(self.sim.now, "release", key, detail)
        self.request.release()

    def cancel(self) -> None:
        """Alias of :meth:`release`; reads better at failure call sites."""
        self.release()


class FlowTransport:
    """Flow-scheduled block transport over a cluster's NICs.

    Generator methods are signature-compatible with the legacy transport
    (``transfer_block`` / ``transfer_bytes`` semantics and return values),
    plus an optional :class:`Flow` for priority and accounting.
    """

    def __init__(self, config: NetworkConfig):
        self.config = config

    # -- admission ---------------------------------------------------------
    def reserve(
        self, src: "Node", dst: "Node", nbytes: int, flow: Optional[Flow] = None
    ) -> Reservation:
        """Submit a reservation for one ``src -> dst`` block."""
        return Reservation(src, dst, nbytes, flow or DEFAULT_FLOW)

    # -- transfers ---------------------------------------------------------
    def transfer_block(
        self,
        src: "Node",
        dst: "Node",
        nbytes: int,
        flow: Optional[Flow] = None,
        handle=None,
    ) -> Generator:
        """Move one block from ``src`` to ``dst`` under flow scheduling.

        Returns (via StopIteration) the simulated time at which the block is
        fully available at the destination.  ``handle`` is the caller's
        convoy :class:`~repro.net.convoy.StreamHandle` when the caller is a
        multi-block loop: the transfer keeps its phase/timestamps current at
        every parking point so a convoy can form around the stream while it
        waits, consumes a materialization's preplaced reservation, and backs
        out with :data:`ADOPTED` (no block moved, nothing accounted) when a
        formation withdrew its queued admission.
        """
        sim = src.sim
        _check_alive(src, dst)
        if handle is not None and handle.preplaced is not None:
            reservation = handle.preplaced
            handle.preplaced = None
        else:
            reservation = self.reserve(src, dst, nbytes, flow)
        if handle is not None:
            handle.phase = PHASE_ADMIT
            handle.reservation = reservation
        try:
            if not reservation.event.triggered:
                # Race the queued admission against either peer dying.  The
                # listeners are removed as soon as the race resolves — they
                # must not accumulate one pair per transferred block.
                peer_failed = Event(sim)

                def _notify(node: "Node") -> None:
                    if not peer_failed.triggered:
                        peer_failed.succeed(node)

                src.on_failure(_notify)
                dst.on_failure(_notify)
                try:
                    yield sim.any_of([reservation.event, peer_failed])
                finally:
                    src.remove_failure_listener(_notify)
                    dst.remove_failure_listener(_notify)
                if handle is not None and handle.poked:
                    handle.poked = False
                    return ADOPTED
                if not reservation.event.triggered:
                    # A peer died while the reservation was still queued:
                    # withdraw the claim so no ghost request survives, then
                    # fail like a broken connection.
                    dead = src if not src.alive else dst
                    raise TransferError(
                        f"node {dead.node_id} failed before transfer admission",
                        node=dead,
                    )
            _check_alive(src, dst)
            tx_t = path_transmission_time(self.config, src, dst, nbytes)
            if handle is not None:
                handle.phase = PHASE_TX
                handle.tx_end = sim._now + tx_t
            tx_timeout = sim.timeout(tx_t)
            loc = sim.locality
            if loc is not None:
                # Serialization happens at the source NIC: the event belongs
                # to the source's partition.
                loc.tag(tx_timeout, src.node_id)
            yield tx_timeout
            _check_alive(src, dst)
        finally:
            reservation.release()
            if handle is not None:
                handle.reservation = None
        lat = path_latency(self.config, src, dst)
        if handle is not None:
            handle.phase = PHASE_LAT
            handle.arr_at = sim._now + lat
        lat_timeout = sim.timeout(lat)
        loc = sim.locality
        if loc is not None:
            # Delivery lands in the destination's partition; the causal
            # predecessor (tx end at the source) is one propagation latency
            # in the past — at least the lookahead for cross-rack paths.
            loc.tag(lat_timeout, dst.node_id)
            loc.arrival(src.node_id, dst.node_id)
        yield lat_timeout
        _check_alive(dst)
        cluster = src.cluster
        if cluster is not None and cluster.flight is not None:
            cluster.flight.record(
                sim._now,
                "arrive",
                f"n{src.node_id}>n{dst.node_id}",
                f"{reservation.flow.flow_id}/{nbytes}",
            )
        return sim.now

    def transfer_bytes(
        self, src: "Node", dst: "Node", nbytes: int, flow: Optional[Flow] = None
    ) -> Generator:
        """Move ``nbytes`` from ``src`` to ``dst`` as a sequence of blocks.

        Thin delegate to the canonical :func:`repro.net.transport.transfer_bytes`
        (one home for the zero-byte and block-splitting contract); with
        ``config.flow_scheduling`` enabled — the reason to hold a
        ``FlowTransport`` — every block routes back through
        :meth:`transfer_block`.
        """
        from repro.net.transport import transfer_bytes as _transfer_bytes

        result = yield from _transfer_bytes(self.config, src, dst, nbytes, flow)
        return result
