"""Hierarchical fabric model: nodes grouped into racks, racks into zones.

The paper's testbed is a flat 10 Gbps cluster — every pair of NICs sees the
full line rate and the only contended resources are the endpoints.  Real
datacenter fabrics are hierarchical and *oversubscribed*: a rack's nodes
share a ToR uplink whose aggregate bandwidth is a fraction ``1/R`` of the
rack's summed NIC bandwidth (an ``R:1`` oversubscription ratio), and zones
are joined by still-scarcer inter-zone links.  Once traffic crosses tiers,
those shared aggregation links — not the NICs — become the binding
constraint, which is exactly where receiver-driven broadcast and dynamic
reduce trees degrade if they place transfers obliviously.

Two layers live here:

* :class:`Topology` — the immutable *spec*: rack sizes, the zone of each
  rack, per-tier oversubscription ratios and extra per-hop latencies, and
  optional heterogeneous per-node NIC speeds.  ``Topology.flat(n)`` is the
  degenerate single-rack fabric and reproduces the pre-topology simulator
  bit for bit (no shared links exist, every transfer sees the NIC rate).
* :class:`Fabric` — the spec *instantiated* on a simulator: every shared
  tier link (rack uplink/downlink, zone uplink/downlink) is a first-class
  admission resource with the same :class:`~repro.net.flowsched.LinkScheduler`
  accounting as a NIC direction, so a flow-scheduled
  :class:`~repro.net.flowsched.Reservation` for a cross-rack flow atomically
  claims source uplink + dest downlink **+ every shared tier link on the
  path** — the PR 3 matching extended from the bipartite NIC graph to the
  fabric graph.

Shared-link capacity model
--------------------------
A tier link with aggregate bandwidth ``A`` (rack NIC sum divided by the
oversubscription ratio) is modelled as ``max(1, floor(A / B))`` concurrent
block slots of ``min(A, A / slots)`` bytes/s each, where ``B`` is the base
NIC rate: at 2:1 a 4-node rack gets 2 full-rate slots, at 4:1 one slot, and
at 8:1 one *half-rate* slot — blocks still serialize at the bottleneck rate
``min(src NIC, dst NIC, slot rates on the path)``.  Admission quantizes to
whole blocks, the same approximation the NIC model already makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.net.flowsched import LinkScheduler
from repro.sim import Resource, Simulator

#: path distance classes used by locality-aware source selection.
DISTANCE_SAME_NODE = 0
DISTANCE_SAME_RACK = 1
DISTANCE_SAME_ZONE = 2
DISTANCE_CROSS_ZONE = 3


@dataclass(frozen=True)
class Topology:
    """Shape of a hierarchical fabric (immutable; lives in ``NetworkConfig``).

    Attributes:
        rack_sizes: nodes per rack; node ids are assigned contiguously, so
            rack ``r`` owns ids ``[sum(rack_sizes[:r]), sum(rack_sizes[:r+1]))``.
        rack_zones: zone index of each rack (``len == len(rack_sizes)``).
        oversubscription: ToR uplink oversubscription ratio ``R`` (R:1); the
            rack's shared up/down links carry ``rack NIC sum / R``.
        zone_oversubscription: additional ratio applied to each zone's
            aggregation links (inter-zone bandwidth class).
        rack_latency: extra one-way propagation per cross-rack transfer.
        zone_latency: extra one-way propagation per cross-zone transfer
            (added on top of ``rack_latency``).
        nic_bandwidths: optional per-node NIC speed overrides in bytes/s
            (``None`` entries fall back to ``NetworkConfig.bandwidth``).
    """

    rack_sizes: tuple[int, ...] = (4,)
    rack_zones: tuple[int, ...] = ()
    oversubscription: float = 1.0
    zone_oversubscription: float = 1.0
    rack_latency: float = 0.0
    zone_latency: float = 0.0
    nic_bandwidths: Optional[tuple[Optional[float], ...]] = None

    def __post_init__(self) -> None:
        if not self.rack_sizes:
            raise ValueError("a topology needs at least one rack")
        if any(size <= 0 for size in self.rack_sizes):
            raise ValueError("every rack must hold at least one node")
        zones = self.rack_zones or tuple(0 for _ in self.rack_sizes)
        object.__setattr__(self, "rack_zones", tuple(zones))
        if len(self.rack_zones) != len(self.rack_sizes):
            raise ValueError("rack_zones must name one zone per rack")
        if self.oversubscription < 1.0 or self.zone_oversubscription < 1.0:
            raise ValueError("oversubscription ratios must be >= 1 (R:1)")
        if self.rack_latency < 0 or self.zone_latency < 0:
            raise ValueError("tier latencies must be non-negative")
        if self.nic_bandwidths is not None:
            object.__setattr__(self, "nic_bandwidths", tuple(self.nic_bandwidths))
            if len(self.nic_bandwidths) != self.num_nodes:
                raise ValueError("nic_bandwidths must cover every node")
            if any(bw is not None and bw <= 0 for bw in self.nic_bandwidths):
                raise ValueError("NIC bandwidth overrides must be positive")
        # node id -> rack index, precomputed once (the spec is immutable).
        node_racks: list[int] = []
        for rack, size in enumerate(self.rack_sizes):
            node_racks.extend([rack] * size)
        object.__setattr__(self, "_node_racks", tuple(node_racks))

    # -- constructors --------------------------------------------------------
    @staticmethod
    def flat(num_nodes: int) -> "Topology":
        """The degenerate fabric: one rack, no shared links, uniform NICs.

        This is the default everywhere and reproduces the pre-topology
        simulator exactly — no tier resource exists to claim, wait for, or
        account.
        """
        if num_nodes <= 0:
            raise ValueError("a topology needs at least one node")
        return Topology(rack_sizes=(num_nodes,))

    @staticmethod
    def racks(
        num_racks: int,
        nodes_per_rack: int,
        oversubscription: float = 1.0,
        zones: Optional[Sequence[int]] = None,
        zone_oversubscription: float = 1.0,
        rack_latency: float = 0.0,
        zone_latency: float = 0.0,
        nic_bandwidths: Optional[Sequence[Optional[float]]] = None,
    ) -> "Topology":
        """A uniform ``num_racks x nodes_per_rack`` fabric."""
        if num_racks <= 0 or nodes_per_rack <= 0:
            raise ValueError("racks and nodes per rack must be positive")
        return Topology(
            rack_sizes=tuple(nodes_per_rack for _ in range(num_racks)),
            rack_zones=tuple(zones) if zones is not None else (),
            oversubscription=oversubscription,
            zone_oversubscription=zone_oversubscription,
            rack_latency=rack_latency,
            zone_latency=zone_latency,
            nic_bandwidths=tuple(nic_bandwidths) if nic_bandwidths is not None else None,
        )

    # -- shape ---------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return sum(self.rack_sizes)

    @property
    def num_racks(self) -> int:
        return len(self.rack_sizes)

    @property
    def num_zones(self) -> int:
        return len(set(self.rack_zones))

    @property
    def is_flat(self) -> bool:
        """True when no shared tier link or NIC asymmetry can exist."""
        return self.num_racks == 1 and self.nic_bandwidths is None

    def rack_of(self, node_id: int) -> int:
        return self._node_racks[node_id]  # type: ignore[attr-defined]

    def zone_of(self, node_id: int) -> int:
        return self.rack_zones[self.rack_of(node_id)]

    def rack_nodes(self, rack: int) -> range:
        start = sum(self.rack_sizes[:rack])
        return range(start, start + self.rack_sizes[rack])

    def same_rack(self, a: int, b: int) -> bool:
        return self.rack_of(a) == self.rack_of(b)

    def same_zone(self, a: int, b: int) -> bool:
        return self.zone_of(a) == self.zone_of(b)

    def distance(self, a: int, b: int) -> int:
        """Path distance class between two nodes (lower = closer)."""
        if a == b:
            return DISTANCE_SAME_NODE
        if self.same_rack(a, b):
            return DISTANCE_SAME_RACK
        if self.same_zone(a, b):
            return DISTANCE_SAME_ZONE
        return DISTANCE_CROSS_ZONE

    def nic_bandwidth(self, node_id: int, base: float) -> float:
        """The node's NIC rate: its override, or the cluster-wide ``base``."""
        if self.nic_bandwidths is None:
            return base
        override = self.nic_bandwidths[node_id]
        return base if override is None else override


class FabricLink:
    """One shared aggregation link: an admission resource plus accounting.

    ``tier`` is one of ``rack_up`` / ``rack_down`` / ``zone_up`` /
    ``zone_down``; reservations claim one slot per block, and granted holds
    are accounted on ``sched`` exactly like a NIC direction.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        tier: str,
        slots: int,
        slot_bandwidth: float,
    ):
        self.name = name
        self.tier = tier
        self.slot_bandwidth = slot_bandwidth
        self.resource = Resource(sim, capacity=slots)
        self.sched = LinkScheduler(sim, self.resource, name)

    @property
    def capacity(self) -> int:
        return self.resource.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FabricLink {self.name} x{self.capacity} @{self.slot_bandwidth:.3g}B/s>"


def _slots_and_rate(aggregate: float, base: float) -> tuple[int, float]:
    """Quantize an aggregate link bandwidth into block slots.

    ``slots = max(1, floor(aggregate / base))`` full-rate slots; when the
    aggregate is below one NIC rate the single slot runs proportionally
    slower, so sub-NIC tier capacities (e.g. 8:1 over a 4-node rack) still
    bite through the serialization time rather than vanishing.
    """
    slots = max(1, int(aggregate // base))
    return slots, min(base, aggregate / slots)


class Fabric:
    """A :class:`Topology` instantiated on one cluster's simulator.

    For the flat topology no link objects exist and every query takes the
    fast path returning the exact pre-topology quantities.
    """

    def __init__(self, sim: Simulator, topology: Topology, config) -> None:
        self.topology = topology
        self.config = config
        #: (src, dst) memos — the fabric is immutable once built, every
        #: block of every flow between a pair crosses the same links at the
        #: same bottleneck rate, and the per-block recomputation (rack/zone
        #: lookups, min over the path) was measurable in kernel profiles.
        self._path_cache: dict[tuple[int, int], tuple["FabricLink", ...]] = {}
        self._rate_cache: dict[tuple[int, int], float] = {}
        self._latency_cache: dict[tuple[int, int], float] = {}
        base = config.bandwidth
        self.rack_up: list[Optional[FabricLink]] = []
        self.rack_down: list[Optional[FabricLink]] = []
        self.zone_up: dict[int, FabricLink] = {}
        self.zone_down: dict[int, FabricLink] = {}
        if topology.num_racks > 1:
            rack_aggregates = []
            for rack in range(topology.num_racks):
                nic_sum = sum(
                    topology.nic_bandwidth(node_id, base)
                    for node_id in topology.rack_nodes(rack)
                )
                aggregate = nic_sum / topology.oversubscription
                rack_aggregates.append(aggregate)
                slots, rate = _slots_and_rate(aggregate, base)
                self.rack_up.append(
                    FabricLink(sim, f"rack{rack}-up", "rack_up", slots, rate)
                )
                self.rack_down.append(
                    FabricLink(sim, f"rack{rack}-down", "rack_down", slots, rate)
                )
            if topology.num_zones > 1:
                for zone in sorted(set(topology.rack_zones)):
                    aggregate = sum(
                        rack_aggregates[rack]
                        for rack in range(topology.num_racks)
                        if topology.rack_zones[rack] == zone
                    ) / topology.zone_oversubscription
                    slots, rate = _slots_and_rate(aggregate, base)
                    self.zone_up[zone] = FabricLink(
                        sim, f"zone{zone}-up", "zone_up", slots, rate
                    )
                    self.zone_down[zone] = FabricLink(
                        sim, f"zone{zone}-down", "zone_down", slots, rate
                    )

    def tier_links(self) -> list[FabricLink]:
        """Every shared tier link, in a stable order (racks, then zones).

        Convoy formation (:mod:`repro.net.convoy`) treats a single-slot tier
        link exactly like a NIC direction — it carries the same admission
        ``Resource`` and :class:`~repro.net.flowsched.LinkScheduler` — so
        observability surfaces iterate this list to attribute convoy domains
        and utilization to the fabric tiers.
        """
        links = [link for link in self.rack_up if link is not None]
        links += [link for link in self.rack_down if link is not None]
        links += list(self.zone_up.values())
        links += list(self.zone_down.values())
        return links

    # -- paths ---------------------------------------------------------------
    def path_links(self, src_id: int, dst_id: int) -> tuple[FabricLink, ...]:
        """Every shared tier link a ``src -> dst`` block must claim a slot on.

        Intra-rack traffic touches no shared link; cross-rack traffic claims
        the source rack's uplink and the destination rack's downlink; cross-
        zone traffic additionally claims both zones' aggregation links.
        """
        cached = self._path_cache.get((src_id, dst_id))
        if cached is not None:
            return cached
        topology = self.topology
        if not self.rack_up:
            path: tuple[FabricLink, ...] = ()
        else:
            src_rack, dst_rack = topology.rack_of(src_id), topology.rack_of(dst_id)
            if src_rack == dst_rack:
                path = ()
            else:
                links = [self.rack_up[src_rack]]
                src_zone = topology.rack_zones[src_rack]
                dst_zone = topology.rack_zones[dst_rack]
                if src_zone != dst_zone:
                    links.append(self.zone_up[src_zone])
                    links.append(self.zone_down[dst_zone])
                links.append(self.rack_down[dst_rack])
                path = tuple(links)
        self._path_cache[(src_id, dst_id)] = path
        return path

    # -- timing --------------------------------------------------------------
    def transmission_time(self, src_id: int, dst_id: int, nbytes: float) -> float:
        """Serialization time at the path bottleneck rate.

        Flat fabric: exactly ``NetworkConfig.transmission_time`` (same
        division by the same base rate).
        """
        topology = self.topology
        if topology.is_flat:
            return self.config.transmission_time(nbytes)
        rate = self._rate_cache.get((src_id, dst_id))
        if rate is None:
            base = self.config.bandwidth
            rate = min(
                topology.nic_bandwidth(src_id, base),
                topology.nic_bandwidth(dst_id, base),
            )
            for link in self.path_links(src_id, dst_id):
                rate = min(rate, link.slot_bandwidth)
            self._rate_cache[(src_id, dst_id)] = rate
        return nbytes / rate

    def latency(self, src_id: int, dst_id: int) -> float:
        """One-way propagation: the base latency plus per-tier extras."""
        cached = self._latency_cache.get((src_id, dst_id))
        if cached is not None:
            return cached
        topology = self.topology
        base = self.config.latency
        if topology.is_flat or topology.same_rack(src_id, dst_id):
            result = base
        else:
            extra = topology.rack_latency
            if not topology.same_zone(src_id, dst_id):
                extra += topology.zone_latency
            result = base + extra
        self._latency_cache[(src_id, dst_id)] = result
        return result

    # -- introspection -------------------------------------------------------
    def iter_links(self):
        """All instantiated shared links (rack tiers first, then zones)."""
        for link in self.rack_up:
            if link is not None:
                yield link
        for link in self.rack_down:
            if link is not None:
                yield link
        yield from self.zone_up.values()
        yield from self.zone_down.values()
