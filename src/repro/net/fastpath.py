"""Unified fast-path control and per-cluster fast-path statistics.

The coalesce (PR 5) and convoy (PR 6) fast paths each grew a module-global
``ENABLED`` kill switch and, in convoy's case, a module-global ``STATS``
dict.  Both were footguns: an A/B ablation could flip one switch and not
the other (half-toggled, the convoy planner still consults coalesce state),
and the counters leaked across scenarios sharing a process, so the second
run of an identical scenario reported inflated numbers.

This module is the single front door:

* :func:`fastpath` — a context manager that toggles *both* switches
  atomically and restores the previous state on exit, so ablations and the
  differential fuzz harness cannot half-toggle;
* :class:`FastpathStats` — the counters, scoped per
  :class:`~repro.net.cluster.Cluster` (``cluster.fastpath_stats``), so
  back-to-back runs of the same scenario in one process report identical
  values.  Nodes built without a cluster (micro unit tests) fall back to a
  module-level orphan sink that exists only so counting never crashes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Node

#: every counter key, in reporting order.  The first five are the convoy
#: planner's (formerly ``repro.net.convoy.STATS``); the last two count the
#: exclusive coalesced path.
COUNTER_KEYS = (
    "domains_formed",
    "members_enrolled",
    "blocks_planned",
    "materializations",
    "refusals",
    "coalesced_runs",
    "resplits",
)


class FastpathStats:
    """Fast-path observability counters for one cluster.

    Purely observational: incrementing a counter never schedules an event
    or perturbs admission, so digests are identical with or without anyone
    reading them.  ``on_event`` is an optional hook the observability plane
    installs to mirror increments into a :class:`MetricsRegistry` counter.
    """

    __slots__ = ("counts", "on_event")

    def __init__(self) -> None:
        self.counts = {key: 0 for key in COUNTER_KEYS}
        self.on_event: Optional[Callable[[str, int], None]] = None

    def bump(self, key: str, n: int = 1) -> None:
        self.counts[key] += n
        if self.on_event is not None:
            self.on_event(key, n)

    def reset(self) -> None:
        for key in self.counts:
            self.counts[key] = 0

    def as_dict(self) -> dict:
        return dict(self.counts)

    def __getitem__(self, key: str) -> int:
        return self.counts[key]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.counts.items())
        return f"FastpathStats({inner})"


#: Sink for nodes that have no cluster.  Never read by the benchmarks —
#: they all run on clusters — it only keeps bare-Node unit setups counting.
_ORPHAN = FastpathStats()


def stats_for(node: "Node") -> FastpathStats:
    """The counters a fast-path event on ``node`` should land in."""
    cluster = node.cluster
    if cluster is None:
        return _ORPHAN
    return cluster.fastpath_stats


def is_enabled() -> bool:
    """True when both fast paths are on (the only supported combinations
    are both-on and both-off; see :func:`set_enabled`)."""
    from repro.net import coalesce, convoy  # deferred: they import stats_for

    return coalesce.ENABLED and convoy.ENABLED


def set_enabled(enabled: bool) -> None:
    """Set both kill switches at once.

    Prefer the :func:`fastpath` context manager, which restores state; this
    exists for command-line entry points that toggle for a whole process.
    """
    from repro.net import coalesce, convoy  # deferred: they import stats_for

    coalesce.ENABLED = enabled
    convoy.ENABLED = enabled


@contextmanager
def fastpath(enabled: bool = True):
    """Run a block with both fast paths forced on or off, then restore.

    The convoy planner assumes the exclusive coalesced path exists (a
    convoy of one is refused because coalescing covers it), so the two
    switches only make sense toggled together — this is the supported way
    to A/B the fast paths::

        with fastpath(False):
            baseline = run_scenario(...)
        with fastpath(True):
            fast = run_scenario(...)
    """
    from repro.net import coalesce, convoy  # deferred: they import stats_for

    saved = (coalesce.ENABLED, convoy.ENABLED)
    coalesce.ENABLED = enabled
    convoy.ENABLED = enabled
    try:
        yield
    finally:
        coalesce.ENABLED, convoy.ENABLED = saved
