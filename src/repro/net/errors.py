"""Transfer failure types and liveness checks.

These live in their own leaf module so both :mod:`repro.net.transport` and
:mod:`repro.net.flowsched` can import them at module scope (the two import
each other lazily, and the former per-block function-body imports showed up
in kernel profiles).  ``repro.net.transport`` re-exports them, so existing
``from repro.net.transport import TransferError`` call sites are unaffected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Node


class TransferError(Exception):
    """A data transfer failed (usually because a peer node died)."""

    def __init__(self, message: str, node: Optional["Node"] = None):
        super().__init__(message)
        self.node = node


class NodeFailedError(TransferError):
    """An operation was attempted on or against a failed node."""


def _check_alive(*nodes: "Node") -> None:
    for node in nodes:
        if not node.alive:
            raise NodeFailedError(f"node {node.node_id} is down", node=node)
