"""Hoplite core: the efficient, fault-tolerant collective communication layer.

This package implements the paper's primary contribution:

* :class:`~repro.core.runtime.HopliteRuntime` — one runtime per simulated
  cluster, owning the per-node object stores, the object directory, and a
  :class:`~repro.core.api.HopliteClient` per node;
* :class:`~repro.core.api.HopliteClient` — the Table 1 API
  (``Put`` / ``Get`` / ``Delete`` / ``Reduce``) plus the ``AllReduce``
  composition;
* :mod:`~repro.core.broadcast` — the receiver-driven broadcast protocol
  (Section 3.4.1) with pipelining and failure recovery;
* :mod:`~repro.core.reduce` — the dynamic ``d``-ary reduce tree
  (Section 3.4.2) with in-order placement by arrival, streaming partial
  reduction, degree selection, and tree repair on failure (Section 3.5.2);
* :mod:`~repro.core.gather` — pipelined allgather (per-object broadcast
  trees) and reduce-scatter (per-shard dynamic reduce trees);
* :mod:`~repro.core.alltoall` — the pipelined all-to-all personalized
  exchange behind MoE-style expert routing.
"""

from repro.core.alltoall import AllToAllExecution, AllToAllResult
from repro.core.api import HopliteClient
from repro.core.gather import (
    AllGatherExecution,
    AllGatherResult,
    ReduceScatterExecution,
    ReduceScatterResult,
)
from repro.core.options import HopliteOptions
from repro.core.reduce import ReducePlan, choose_reduce_degree, reduce_time_model
from repro.core.runtime import HopliteRuntime
from repro.store.objects import ObjectID, ObjectValue, ReduceOp

__all__ = [
    "AllGatherExecution",
    "AllGatherResult",
    "AllToAllExecution",
    "AllToAllResult",
    "HopliteClient",
    "HopliteOptions",
    "HopliteRuntime",
    "ObjectID",
    "ObjectValue",
    "ReduceOp",
    "ReducePlan",
    "ReduceScatterExecution",
    "ReduceScatterResult",
    "choose_reduce_degree",
    "reduce_time_model",
]
