"""Pipelined allgather and reduce-scatter built from Hoplite's primitives.

Hoplite (Section 3.4) has no dedicated collective engine: every collective is
a composition of ``Put`` / ``Get`` / ``Reduce`` over the object directory.
This module grows the family two ways:

* **Allgather** (Section 3.4.1 applied per object): every participant
  ``Put``s one object and every participant ``Get``s all of them.  Each
  object's dissemination is an independent receiver-driven broadcast, so the
  copies relay through earlier receivers and the per-node completion time
  approaches the downlink bound ``S_total / B`` plus a logarithmic latency
  term — the same pipelined bound the paper derives for broadcast.
* **Reduce-scatter** (Section 3.4.2 applied per shard): the input is
  logically an ``n x n`` matrix of objects where row ``i`` is produced by
  participant ``i`` and column ``j`` is destined to participant ``j``.  Each
  participant runs one dynamic-tree :class:`~repro.core.reduce.ReduceExecution`
  over its own column, so the ``n`` shard reductions proceed concurrently on
  ``n`` disjoint trees and repair independently on failure (Section 3.5.2).

Failure handling follows Section 3.5.1: a fetch that loses its source keeps
its partial blocks and retries against the directory; a participant that
loses a source object altogether blocks until the framework reconstructs it
(re-``Put``s the same ObjectID), exactly like ``Reduce`` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional, Sequence

from repro.core.reduce import ReduceResult, adopt_or_create_reduction
from repro.net.flowsched import Flow, FlowClass
from repro.net.node import Node
from repro.net.transport import NodeFailedError, TransferError
from repro.store.objects import ObjectID, ObjectValue, ReduceOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import HopliteRuntime


@dataclass
class AllGatherResult:
    """Outcome of one participant's completed allgather."""

    source_ids: list[ObjectID]
    #: fetched values, in ``source_ids`` order.
    values: list[ObjectValue]
    #: transient fetch errors absorbed while sources were being repaired.
    retries: int
    completion_time: float


@dataclass
class ReduceScatterResult:
    """Outcome of one participant's shard of a reduce-scatter."""

    target_id: ObjectID
    reduce: ReduceResult
    value: ObjectValue
    completion_time: float


class AllGatherExecution:
    """One participant's share of an allgather.

    Each participant walks the source list starting just past its own rank
    and keeps only a small window of fetches in flight.  The rotation
    de-synchronizes the participants — in the first round object ``j`` is
    claimed by receiver ``j + 1`` rather than by whichever receiver's RPC
    happens to land first — so the directory's one-receiver-per-source rule
    unfolds into a balanced, ring-like schedule instead of convoying every
    object's first copy through the same downlink.  The window (rather than
    strictly serial rounds) hides the directory RPCs between fetches.
    """

    #: concurrent fetches per participant; 2 overlaps the next fetch's
    #: directory round trip with the current transfer without re-herding.
    DEFAULT_WINDOW = 2

    def __init__(
        self,
        runtime: "HopliteRuntime",
        node: Node,
        source_ids: Sequence[ObjectID],
        window: Optional[int] = None,
    ):
        if not source_ids:
            raise ValueError("allgather requires at least one source object")
        self.runtime = runtime
        self.node = node
        self.sim = runtime.sim
        self.source_ids = list(source_ids)
        self.window = max(1, window if window is not None else self.DEFAULT_WINDOW)
        self._values: dict[ObjectID, ObjectValue] = {}
        self.retries = 0

    def _fetch_order(self) -> list[ObjectID]:
        pivot = (self.node.node_id + 1) % len(self.source_ids)
        order = self.source_ids[pivot:] + self.source_ids[:pivot]
        topology = self.runtime.cluster.topology
        if not self.runtime.options.topology_aware or topology.is_flat:
            return order
        # Rack-aware refinement: pull remote-rack objects first (each pull
        # drags one copy across the shared tier links while they are least
        # contended, after which rack-mates relay it locally), and leave
        # same-rack objects — cheap intra-rack relays that stay available —
        # for last.  The rotation is preserved inside each group, so the
        # de-synchronization across participants survives.
        directory = self.runtime.directory
        my_rack = topology.rack_of(self.node.node_id)
        remote: list[ObjectID] = []
        local: list[ObjectID] = []
        for object_id in order:
            rack_local = any(
                topology.rack_of(node_id) == my_rack
                for node_id in directory.locations_of(object_id)
            )
            (local if rack_local else remote).append(object_id)
        return remote + local

    def run(self) -> Generator:
        queue = list(self._fetch_order())
        # Fetch workers are spawned through the orchestration hook so a task
        # framework can attribute the relay copies they grow to the owning
        # collective spec (they are the "broadcast relays" of the ownership
        # table).
        workers = [
            self.runtime.orchestration.spawn(
                self._fetch_worker(queue),
                name=f"allgather-w{index}-n{self.node.node_id}",
            )
            for index in range(min(self.window, len(queue)))
        ]
        yield self.sim.all_of(workers)
        if len(self._values) != len(self.source_ids):
            raise NodeFailedError(
                f"node {self.node.node_id} failed during allgather", node=self.node
            )
        return AllGatherResult(
            source_ids=list(self.source_ids),
            values=[self._values[object_id] for object_id in self.source_ids],
            retries=self.retries,
            completion_time=self.sim.now,
        )

    def _fetch_worker(self, queue: list[ObjectID]) -> Generator:
        while queue:
            object_id = queue.pop(0)
            yield from self._fetch_one(object_id)
            if not self.node.alive:
                return

    def _fetch_one(self, object_id: ObjectID) -> Generator:
        """Fetch one source object, absorbing transient source failures.

        The underlying broadcast protocol already retries against other
        sources; the loop here only covers the window where *every* copy of
        the object is gone and the fetch errors out before the framework
        re-``Put``s it.  If the calling node itself dies the fetch gives up —
        the coordinator turns that into a :class:`NodeFailedError`.
        """
        client = self.runtime.client(self.node)
        flow = Flow(f"allgather:{object_id}->n{self.node.node_id}", FlowClass.BULK)
        while True:
            try:
                value = yield from client.get(object_id, flow=flow)
                self._values[object_id] = value
                return
            except TransferError:
                if not self.node.alive:
                    return
                self.retries += 1
                yield self.sim.timeout(self.runtime.config.failure_detection_delay)


class ReduceScatterExecution:
    """One participant's shard of a reduce-scatter.

    ``source_ids`` is this participant's *column* of the input matrix; the
    shard reduction is a full dynamic-tree reduce rooted wherever the first
    source arrives, followed by a streaming ``Get`` that pulls the shard to
    the caller while the tree is still producing it (Section 3.3).
    """

    def __init__(
        self,
        runtime: "HopliteRuntime",
        node: Node,
        target_id: ObjectID,
        source_ids: Sequence[ObjectID],
        op: ReduceOp,
        num_objects: Optional[int] = None,
    ):
        self.runtime = runtime
        self.node = node
        self.sim = runtime.sim
        self.target_id = target_id
        self.source_ids = list(source_ids)
        self.op = op
        self.num_objects = num_objects

    def run(self) -> Generator:
        execution = adopt_or_create_reduction(
            self.runtime,
            self.node,
            self.target_id,
            self.source_ids,
            self.op,
            num_objects=self.num_objects,
        )
        # The Get streams concurrently with the reduce so the shard arrives
        # block by block as the root produces it.  The execution's
        # coordination loop is a detached driver process: if the caller dies
        # mid-Get the shard reduction keeps going, and the caller's
        # lineage-driven re-execution adopts it through the runtime's
        # active-reduction registry instead of racing a duplicate tree.
        reduce_proc = self.sim.process(
            execution.run(), name=f"reduce-scatter-{self.target_id}"
        )
        try:
            value = yield from self.runtime.client(self.node).get(
                self.target_id,
                flow=Flow(
                    f"reduce-scatter:{self.target_id}->n{self.node.node_id}",
                    FlowClass.BULK,
                ),
            )
        except BaseException:
            reduce_proc.defused = True  # nobody awaits the abandoned waiter
            raise
        result: ReduceResult = yield reduce_proc
        return ReduceScatterResult(
            target_id=self.target_id,
            reduce=result,
            value=value,
            completion_time=self.sim.now,
        )
