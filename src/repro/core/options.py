"""Tunable behaviour of the Hoplite runtime."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class HopliteOptions:
    """Feature switches for the Hoplite runtime.

    The defaults correspond to the full system described in the paper.
    Ablations (used by the benchmark suite and the tests) disable individual
    mechanisms:

    Attributes:
        enable_pipelining: stream objects block by block across nodes and
            between workers and their local store (Section 3.3).  When off,
            every copy waits for its source to be complete first.
        enable_small_object_cache: cache objects under the directory's
            small-object threshold inline in the directory (Section 3.2).
        enable_dynamic_broadcast: let earlier receivers act as senders for
            later receivers (Section 3.4.1).  When off, every receiver pulls
            from a complete copy only — i.e. the naive sender-bottlenecked
            behaviour of existing task systems.
        reduce_degree: force a fixed reduce-tree degree.  ``None`` selects
            the degree at runtime from the latency/bandwidth model, choosing
            among ``candidate_reduce_degrees`` (Section 3.4.2 / Appendix B).
        candidate_reduce_degrees: degrees considered by the runtime selector;
            ``0`` stands for ``n`` (a flat tree), matching the paper's
            implementation note that `d ∈ {1, 2, n}` suffices.
        source_selection_seed: seed of the directory's deterministic
            tie-break among equally loaded transfer sources.  Any fixed seed
            makes a run byte-for-byte reproducible; varying it varies the
            broadcast-tree shapes without losing replayability.
        topology_aware: exploit the cluster's fabric hierarchy: the
            directory prefers same-rack (then same-zone) transfer sources,
            broadcast relays accordingly stay inside a rack after one
            cross-rack copy, multi-rack reduces run hierarchically
            (intra-rack trees feeding an inter-rack tree), and allgather
            participants pull remote-rack objects first.  On the flat
            topology this switch changes nothing; ``False`` keeps the
            topology-oblivious behaviour as an ablation.
    """

    enable_pipelining: bool = True
    enable_small_object_cache: bool = True
    enable_dynamic_broadcast: bool = True
    reduce_degree: Optional[int] = None
    candidate_reduce_degrees: Sequence[int] = (1, 2, 0)
    source_selection_seed: int = 0
    topology_aware: bool = True

    def __post_init__(self) -> None:
        if self.reduce_degree is not None and self.reduce_degree < 0:
            raise ValueError("reduce_degree must be None, 0 (meaning n), or positive")
        if not self.candidate_reduce_degrees:
            raise ValueError("candidate_reduce_degrees must not be empty")
        for degree in self.candidate_reduce_degrees:
            if degree < 0:
                raise ValueError("candidate degrees must be >= 0 (0 means n)")
