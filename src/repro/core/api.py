"""The Hoplite client API (Table 1): Put, Get, Delete, Reduce (+ AllReduce,
AllGather, ReduceScatter, AllToAll compositions).

Every method is a generator meant to be driven by a simulation process::

    client = runtime.client(node)
    value = yield from client.get(object_id)

The timing of each call (memory copies, directory RPCs, network transfers)
is charged to the simulated clock; the return values carry real payloads when
the objects were created with payloads, so functional correctness can be
asserted in tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Sequence

from repro.core.alltoall import AllToAllExecution, AllToAllResult
from repro.core.broadcast import fetch_object
from repro.core.gather import (
    AllGatherExecution,
    AllGatherResult,
    ReduceScatterExecution,
    ReduceScatterResult,
)
from repro.core.reduce import ReduceResult, adopt_or_create_reduction
from repro.net import convoy
from repro.net.coalesce import register_stream, unregister_stream
from repro.net.convoy import StreamHandle
from repro.net.flowsched import ADOPTED, Flow
from repro.net.node import Node
from repro.net.transport import NodeFailedError, local_copy, local_copy_block
from repro.store.objects import ObjectID, ObjectValue, ReduceOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import HopliteRuntime


class HopliteClient:
    """The per-node entry point to Hoplite.

    A client is bound to a node; conceptually it is the library linked into
    every task worker running on that node.
    """

    def __init__(self, runtime: "HopliteRuntime", node: Node):
        self.runtime = runtime
        self.node = node
        self.sim = runtime.sim
        self.config = runtime.config

    # ------------------------------------------------------------------ Put --
    def put(self, object_id: ObjectID, value: ObjectValue) -> Generator:
        """Create an object with the given id from the worker's buffer.

        The copy into the local store is pipelined with any downstream
        transfer: the location is published to the directory as soon as the
        Put starts, so receivers can begin fetching blocks before the copy
        finishes (Section 3.3).
        """
        runtime = self.runtime
        store = runtime.store(self.node)
        directory = runtime.directory
        options = runtime.options

        entry = store.create_or_get(object_id, value.size, pin=True)
        entry.metadata.update(value.metadata)

        if runtime.small_object(value.size):
            # Small objects: pay one (tiny) copy, cache inline in the
            # directory, and publish the local complete copy.
            yield from local_copy(self.config, self.node, value.size)
            entry.seal(value.payload)
            yield from directory.put_inline(self.node, object_id, value)
            yield from directory.publish_complete(self.node, object_id, value.size)
            return object_id

        if options.enable_pipelining:
            # Publish the partial location first so receivers can stream.
            yield from directory.publish_partial(
                self.node, object_id, value.size, upstream=None
            )
            # On an exclusive memcpy channel the copy-in stays per-block: a
            # pipelined Put is published before it starts, so in synchronized
            # scenarios many puts mark their first blocks in the same
            # timestep and dozens of remote fetches key their admission order
            # off those marks; an *exclusive* coalesced run would shift that
            # intra-timestep order while saving only ~2 events per memcpy
            # block.  When several Puts saturate one channel, though, the
            # queue discipline is deterministic and the convoy fast path
            # (net/convoy) advances the whole lockstep group arithmetically,
            # re-splitting to per-block on any disturbance.
            config = self.config
            links = [(self.node.memcpy_channel, None)]
            handle = StreamHandle(
                "copy", config, self.node, self.node, None, links, entry
            )
            register_stream(links, handle)
            try:
                while entry.blocks_ready < entry.num_blocks:
                    handle.phase = convoy.TOP
                    run = handle.adopted_run
                    if run is not None:
                        # Conscripted by a convoy formed around this channel
                        # while the Put was queued; drive our planned share.
                        handle.adopted_run = None
                        handle.phase = convoy.RUN
                        yield from run.run()
                        continue
                    block_index = entry.blocks_ready
                    run = convoy.maybe_form(handle, block_index)
                    if run is not None:
                        handle.phase = convoy.RUN
                        yield from run.run()
                        continue
                    nbytes = config.block_bytes(value.size, block_index)
                    result = yield from local_copy_block(
                        config, self.node, nbytes, handle
                    )
                    if result is ADOPTED:
                        continue
                    entry.mark_block_ready(block_index)
            finally:
                if handle.preplaced is not None:
                    handle.preplaced.cancel()
                    handle.preplaced = None
                unregister_stream(links, handle)
            entry.seal(value.payload)
            yield from directory.publish_complete(self.node, object_id, value.size)
        else:
            yield from local_copy(self.config, self.node, value.size)
            entry.seal(value.payload)
            yield from directory.publish_complete(self.node, object_id, value.size)
        return object_id

    # ------------------------------------------------------------------ Get --
    def get(
        self,
        object_id: ObjectID,
        read_only: bool = True,
        flow: Optional[Flow] = None,
    ) -> Generator:
        """Fetch an object buffer by id, blocking until it is available.

        ``read_only=True`` returns a pointer into the local store (no copy),
        which is how the paper runs its evaluation; ``read_only=False`` pays
        an extra store-to-worker copy.  ``flow`` tags the fetch's transfers
        for admission priority and per-flow accounting (collectives pass
        their own flow ids; plain gets default to a bulk-class flow).
        """
        runtime = self.runtime
        store = runtime.store(self.node)
        directory = runtime.directory
        manager = runtime.manager(self.node)

        entry = store.try_get_entry(object_id)
        if entry is None or not entry.sealed:
            # Small-object fast path: the value may live inline in the directory.
            known_size = directory.known_size(object_id)
            if runtime.options.enable_small_object_cache and (
                known_size is None or runtime.small_object(known_size)
            ):
                yield from directory.wait_for_object(self.node, object_id)
                size = directory.known_size(object_id) or 0
                if runtime.small_object(size):
                    inline = yield from directory.try_get_inline(self.node, object_id)
                    if inline is not None:
                        yield from local_copy(self.config, self.node, size)
                        return inline if read_only else inline.copy()
            # Full path: share a single in-flight fetch per node per object.
            fetch = manager.inflight_fetches.get(object_id)
            if fetch is None or not fetch.is_alive:
                fetch = self.sim.process(
                    fetch_object(runtime, self.node, object_id, flow=flow),
                    name=f"fetch-{object_id}-n{self.node.node_id}",
                )
                manager.inflight_fetches[object_id] = fetch
            yield fetch
            if manager.inflight_fetches.get(object_id) is fetch:
                manager.inflight_fetches.pop(object_id, None)
            entry = store.try_get_entry(object_id)
            if entry is None or not entry.sealed:
                # The copy vanished between the fetch completing and this
                # read: the node failed in the same instant (store cleared)
                # or the copy was evicted.  Fail like any other transfer on
                # a dead node so retry loops see a TransferError; otherwise
                # simply fetch again.
                if not self.node.alive:
                    raise NodeFailedError(
                        f"node {self.node.node_id} is down", node=self.node
                    )
                result = yield from self.get(object_id, read_only=read_only, flow=flow)
                return result

        # Record the relay copy with the orchestration layer: this node is
        # now an adoptable source for the object (broadcast relays in the
        # ownership table, Section 6).
        runtime.orchestration.record_copy(object_id, self.node.node_id)
        if not read_only:
            yield from local_copy(self.config, self.node, entry.size)
            value = entry.to_value()
            return value.copy()
        return entry.to_value()

    # --------------------------------------------------------------- Delete --
    def delete(self, object_id: ObjectID) -> Generator:
        """Delete all copies of an object (called by the framework)."""
        runtime = self.runtime
        yield from runtime.directory.delete_object(self.node, object_id)
        for store in runtime.stores.values():
            store.delete(object_id)
        return None

    # --------------------------------------------------------------- Reduce --
    def reduce(
        self,
        target_id: ObjectID,
        source_ids: Sequence[ObjectID],
        op: ReduceOp = ReduceOp.SUM,
        num_objects: Optional[int] = None,
    ) -> Generator:
        """Reduce ``num_objects`` of the given sources into ``target_id``.

        Returns a :class:`~repro.core.reduce.ReduceResult`; the reduced object
        itself is obtained with :meth:`get` on ``target_id`` (it lives at the
        reduce tree's root until then).

        The execution's coordination loop runs as a detached driver process
        (obtained through the runtime's orchestration hook), so the reduce
        keeps making progress if the calling task dies; a re-executed caller
        issuing the same Reduce adopts the surviving execution.
        """
        execution = adopt_or_create_reduction(
            self.runtime,
            self.node,
            target_id,
            source_ids,
            op,
            num_objects=num_objects,
        )
        result: ReduceResult = yield from execution.run()
        return result

    # ------------------------------------------------------------- AllReduce --
    def allreduce(
        self,
        target_id: ObjectID,
        source_ids: Sequence[ObjectID],
        op: ReduceOp = ReduceOp.SUM,
        num_objects: Optional[int] = None,
    ) -> Generator:
        """Reduce then fetch the result locally (reduce ∘ broadcast).

        Hoplite has no dedicated allreduce: each participant simply calls
        ``Get`` on the reduce target (Section 3.4.3).  This helper performs
        the caller's share; other participants call :meth:`get` themselves.
        """
        result = yield from self.reduce(target_id, source_ids, op, num_objects)
        value = yield from self.get(target_id)
        return result, value

    # ------------------------------------------------------------- AllGather --
    def allgather(self, source_ids: Sequence[ObjectID]) -> Generator:
        """Fetch every source object locally; each is its own broadcast.

        Performs this participant's share of an allgather (Section 3.4.1 per
        object): the other participants call :meth:`allgather` themselves and
        the per-object broadcast trees grow across all of them.  Returns an
        :class:`~repro.core.gather.AllGatherResult`.
        """
        execution = AllGatherExecution(self.runtime, self.node, source_ids)
        result: AllGatherResult = yield from execution.run()
        return result

    # --------------------------------------------------------- ReduceScatter --
    def reduce_scatter(
        self,
        target_id: ObjectID,
        source_ids: Sequence[ObjectID],
        op: ReduceOp = ReduceOp.SUM,
        num_objects: Optional[int] = None,
    ) -> Generator:
        """Reduce this participant's shard column into ``target_id`` and fetch it.

        ``source_ids`` is the caller's *column* of the logical shard matrix
        (the objects every participant produced for this caller's shard).
        Each participant calls :meth:`reduce_scatter` on its own column, so
        the ``n`` shard reductions run as ``n`` concurrent dynamic trees
        (Section 3.4.2) that repair independently on failure.  Returns a
        :class:`~repro.core.gather.ReduceScatterResult`.
        """
        execution = ReduceScatterExecution(
            self.runtime,
            self.node,
            target_id,
            source_ids,
            op,
            num_objects=num_objects,
        )
        result: ReduceScatterResult = yield from execution.run()
        return result

    # -------------------------------------------------------------- AllToAll --
    def alltoall(
        self,
        sends: Sequence[tuple[ObjectID, ObjectValue]],
        recv_ids: Sequence[ObjectID],
    ) -> Generator:
        """Exchange personalized objects with every peer (MoE-style routing).

        ``sends`` is this participant's row of the exchange matrix and
        ``recv_ids`` its column; sends and receives stream concurrently so
        both NIC directions stay busy (Section 3.3).  Returns an
        :class:`~repro.core.alltoall.AllToAllResult`.
        """
        execution = AllToAllExecution(self.runtime, self.node, sends, recv_ids)
        result: AllToAllResult = yield from execution.run()
        return result
