"""Pipelined all-to-all personalized exchange over the object store.

An alltoall is the collective behind MoE-style expert routing: participant
``i`` holds one object per destination ``j`` and must end up with every
object destined to it.  In Hoplite's object model (Table 1) this is nothing
more than ``n`` rows of ``Put``s and ``n`` columns of ``Get``s — the value
of making it first-class is overlap:

* sends and receives run **concurrently**: a participant's outgoing shards
  are published to the directory as partial locations the moment the ``Put``
  starts (Section 3.3), so its peers stream blocks while the local
  worker-to-store copy is still in flight, and its own ``Get``s occupy the
  downlink at the same time;
* each (source, destination) pair streams block by block through the
  transport, so the exchange is bandwidth-bound at ``(n-1) * S / B`` per
  NIC direction rather than latency-bound;
* failure handling is inherited from the broadcast protocol
  (Section 3.5.1): a receiver that loses its source keeps the blocks it has
  and re-resolves through the directory once the object is re-``Put``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Sequence

from repro.net.flowsched import Flow, FlowClass
from repro.net.node import Node
from repro.net.transport import NodeFailedError, TransferError
from repro.store.objects import ObjectID, ObjectValue

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import HopliteRuntime


@dataclass
class AllToAllResult:
    """Outcome of one participant's completed alltoall."""

    sent_ids: list[ObjectID]
    recv_ids: list[ObjectID]
    #: received values, in ``recv_ids`` order.
    values: list[ObjectValue]
    #: transient fetch errors absorbed while sources were being repaired.
    retries: int
    completion_time: float


class AllToAllExecution:
    """One participant's share of an all-to-all exchange.

    ``sends`` is this participant's row of the exchange matrix — the
    ``(ObjectID, ObjectValue)`` pairs it contributes — and ``recv_ids`` is
    its column: the objects (produced by its peers) it must collect.  Either
    side may be empty, e.g. when the caller already ``Put`` its row.
    """

    def __init__(
        self,
        runtime: "HopliteRuntime",
        node: Node,
        sends: Sequence[tuple[ObjectID, ObjectValue]],
        recv_ids: Sequence[ObjectID],
    ):
        if not sends and not recv_ids:
            raise ValueError("alltoall requires at least one send or receive")
        self.runtime = runtime
        self.node = node
        self.sim = runtime.sim
        self.sends = list(sends)
        self.recv_ids = list(recv_ids)
        self._values: dict[ObjectID, ObjectValue] = {}
        self._sent: set[ObjectID] = set()
        self.retries = 0

    def run(self) -> Generator:
        # Row puts and column gets are spawned through the orchestration hook
        # so a task framework can attribute each in-flight shard transfer to
        # the owning collective spec.
        orchestration = self.runtime.orchestration
        workers = [
            orchestration.spawn(
                self._send_one(object_id, value),
                name=f"alltoall-send-{object_id}-n{self.node.node_id}",
                owner=object_id,
            )
            for object_id, value in self.sends
        ]
        workers += [
            orchestration.spawn(
                self._recv_one(object_id),
                name=f"alltoall-recv-{object_id}-n{self.node.node_id}",
                owner=object_id,
            )
            for object_id in self.recv_ids
        ]
        yield self.sim.all_of(workers)
        if len(self._values) != len(self.recv_ids) or len(self._sent) != len(self.sends):
            raise NodeFailedError(
                f"node {self.node.node_id} failed during alltoall", node=self.node
            )
        return AllToAllResult(
            sent_ids=[object_id for object_id, _ in self.sends],
            recv_ids=list(self.recv_ids),
            values=[self._values[object_id] for object_id in self.recv_ids],
            retries=self.retries,
            completion_time=self.sim.now,
        )

    def _send_one(self, object_id: ObjectID, value: ObjectValue) -> Generator:
        client = self.runtime.client(self.node)
        try:
            yield from client.put(object_id, value)
            self._sent.add(object_id)
        except TransferError:
            # The caller died mid-Put; the coordinator reports the failure.
            return

    def _recv_one(self, object_id: ObjectID) -> Generator:
        client = self.runtime.client(self.node)
        flow = Flow(f"alltoall:{object_id}->n{self.node.node_id}", FlowClass.BULK)
        while True:
            try:
                value = yield from client.get(object_id, flow=flow)
                self._values[object_id] = value
                return
            except TransferError:
                if not self.node.alive:
                    return
                self.retries += 1
                yield self.sim.timeout(self.runtime.config.failure_detection_delay)
