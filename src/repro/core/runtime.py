"""The Hoplite runtime: per-node stores, the directory, and per-node clients."""

from __future__ import annotations

from typing import Optional

from repro.core.options import HopliteOptions
from repro.directory.service import ObjectDirectory
from repro.net.cluster import Cluster
from repro.net.node import Node
from repro.sim import Process
from repro.store.object_store import LocalObjectStore
from repro.store.objects import ObjectID

#: module-level hook called with every new :class:`HopliteRuntime` — the same
#: idiom as ``repro.net.cluster.ON_CREATE``.  The fuzz harness uses it to
#: reach the runtime (for control-plane fault injection) without threading a
#: parameter through every scenario constructor.
ON_CREATE = None


class NodeObjectManager:
    """Per-node bookkeeping that is not part of the store itself.

    Most importantly it tracks *in-flight Get requests* so that, when several
    workers on the same node ask for the same object, only one fetch crosses
    the network (Section 3.4.1: "it first checks if the object is locally
    available, or there is an on-going request for the object locally").
    """

    def __init__(self, node: Node):
        self.node = node
        #: object_id -> the Process currently fetching it into the local store.
        self.inflight_fetches: dict[ObjectID, Process] = {}
        node.on_failure(self._on_failure)

    def _on_failure(self, node: Node) -> None:
        self.inflight_fetches.clear()


class LocalOrchestration:
    """Default (framework-less) orchestration hook.

    Collective executions route their internal driver processes and
    intermediate-object records through ``runtime.orchestration`` so that a
    task framework can observe them.  Without a framework attached, spawning
    falls through to anonymous simulation processes and the ownership
    records are dropped — exactly the pre-orchestration behaviour.
    """

    def __init__(self, sim):
        self.sim = sim

    def spawn(self, generator, name: str = "", owner: Optional[ObjectID] = None) -> Process:
        """Spawn a collective-internal driver process.

        ``owner`` names the object (usually the collective target) the
        process works toward; a recording orchestration uses it to attribute
        the process — and the partials it creates — to a collective spec.
        """
        return self.sim.process(generator, name=name)

    def record_partial(
        self, parent_id: ObjectID, partial_id: ObjectID, node_id: Optional[int] = None
    ) -> None:
        """An execution materialized an internal object derived from ``parent_id``."""

    def record_copy(self, object_id: ObjectID, node_id: int) -> None:
        """A receiver-driven fetch grew a relay copy of ``object_id``."""


class HopliteRuntime:
    """One Hoplite deployment on a simulated cluster.

    The runtime wires up, for every node: a :class:`LocalObjectStore`, a
    :class:`NodeObjectManager`, and a :class:`HopliteClient` (created lazily
    through :meth:`client`).  A single :class:`ObjectDirectory` spans the
    cluster.
    """

    def __init__(
        self,
        cluster: Cluster,
        options: Optional[HopliteOptions] = None,
        store_capacity_bytes: Optional[int] = None,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = cluster.config
        self.options = options or HopliteOptions()
        self.directory = ObjectDirectory(
            cluster,
            selection_seed=self.options.source_selection_seed,
            topology_aware=self.options.topology_aware,
        )
        self.stores: dict[int, LocalObjectStore] = {
            node.node_id: LocalObjectStore(node, self.config, store_capacity_bytes)
            for node in cluster.nodes
        }
        self.managers: dict[int, NodeObjectManager] = {
            node.node_id: NodeObjectManager(node) for node in cluster.nodes
        }
        self._clients: dict[int, "HopliteClient"] = {}
        #: the orchestration hook; a task framework (the collective
        #: orchestrator) replaces this with a recording implementation.
        self.orchestration = LocalOrchestration(self.sim)
        #: target ObjectID -> the in-flight ReduceExecution driving it.
        #: Entries deregister when the execution finishes or aborts, so a
        #: lookup hit always means "this target is still being produced" and
        #: a re-invoking caller can adopt it instead of racing a duplicate.
        self.active_reductions: dict[ObjectID, object] = {}
        #: number of Reduce calls answered by adopting an in-flight execution.
        self.reduce_adoptions = 0
        #: streaming reduce recovery: repairs that kept the root's reduced
        #: prefix, and restarted roots seeded from a surviving receiver copy.
        self.root_progress_preserved = 0
        self.root_prefix_seeds = 0
        #: monotone nonce for hierarchical-reduce intermediate object ids;
        #: per-runtime (not global) so repeated runs inside one process stay
        #: byte-for-byte reproducible.
        self.hierarchical_reduce_seq = 0
        if ON_CREATE is not None:
            ON_CREATE(self)

    # -- accessors -------------------------------------------------------------
    def store(self, node: Node | int) -> LocalObjectStore:
        node_id = node.node_id if isinstance(node, Node) else node
        return self.stores[node_id]

    def manager(self, node: Node | int) -> NodeObjectManager:
        node_id = node.node_id if isinstance(node, Node) else node
        return self.managers[node_id]

    def node(self, node_id: int) -> Node:
        return self.cluster.nodes[node_id]

    def client(self, node: Node | int) -> "HopliteClient":
        """The Hoplite client bound to ``node`` (created on first use)."""
        from repro.core.api import HopliteClient

        node_id = node.node_id if isinstance(node, Node) else node
        client = self._clients.get(node_id)
        if client is None:
            client = HopliteClient(self, self.cluster.nodes[node_id])
            self._clients[node_id] = client
        return client

    # -- helpers used by the protocols ------------------------------------------
    def small_object(self, size: int) -> bool:
        return (
            self.options.enable_small_object_cache
            and size < self.config.small_object_threshold
        )
