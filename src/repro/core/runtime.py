"""The Hoplite runtime: per-node stores, the directory, and per-node clients."""

from __future__ import annotations

from typing import Optional

from repro.core.options import HopliteOptions
from repro.directory.service import ObjectDirectory
from repro.net.cluster import Cluster
from repro.net.node import Node
from repro.sim import Process
from repro.store.object_store import LocalObjectStore
from repro.store.objects import ObjectID


class NodeObjectManager:
    """Per-node bookkeeping that is not part of the store itself.

    Most importantly it tracks *in-flight Get requests* so that, when several
    workers on the same node ask for the same object, only one fetch crosses
    the network (Section 3.4.1: "it first checks if the object is locally
    available, or there is an on-going request for the object locally").
    """

    def __init__(self, node: Node):
        self.node = node
        #: object_id -> the Process currently fetching it into the local store.
        self.inflight_fetches: dict[ObjectID, Process] = {}
        node.on_failure(self._on_failure)

    def _on_failure(self, node: Node) -> None:
        self.inflight_fetches.clear()


class HopliteRuntime:
    """One Hoplite deployment on a simulated cluster.

    The runtime wires up, for every node: a :class:`LocalObjectStore`, a
    :class:`NodeObjectManager`, and a :class:`HopliteClient` (created lazily
    through :meth:`client`).  A single :class:`ObjectDirectory` spans the
    cluster.
    """

    def __init__(
        self,
        cluster: Cluster,
        options: Optional[HopliteOptions] = None,
        store_capacity_bytes: Optional[int] = None,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = cluster.config
        self.options = options or HopliteOptions()
        self.directory = ObjectDirectory(cluster)
        self.stores: dict[int, LocalObjectStore] = {
            node.node_id: LocalObjectStore(node, self.config, store_capacity_bytes)
            for node in cluster.nodes
        }
        self.managers: dict[int, NodeObjectManager] = {
            node.node_id: NodeObjectManager(node) for node in cluster.nodes
        }
        self._clients: dict[int, "HopliteClient"] = {}

    # -- accessors -------------------------------------------------------------
    def store(self, node: Node | int) -> LocalObjectStore:
        node_id = node.node_id if isinstance(node, Node) else node
        return self.stores[node_id]

    def manager(self, node: Node | int) -> NodeObjectManager:
        node_id = node.node_id if isinstance(node, Node) else node
        return self.managers[node_id]

    def node(self, node_id: int) -> Node:
        return self.cluster.nodes[node_id]

    def client(self, node: Node | int) -> "HopliteClient":
        """The Hoplite client bound to ``node`` (created on first use)."""
        from repro.core.api import HopliteClient

        node_id = node.node_id if isinstance(node, Node) else node
        client = self._clients.get(node_id)
        if client is None:
            client = HopliteClient(self, self.cluster.nodes[node_id])
            self._clients[node_id] = client
        return client

    # -- helpers used by the protocols ------------------------------------------
    def small_object(self, size: int) -> bool:
        return (
            self.options.enable_small_object_cache
            and size < self.config.small_object_threshold
        )
