"""Hierarchical (rack-aware) reduce for oversubscribed fabrics.

A flat dynamic reduce tree (Section 3.4.2) places edges by arrival order, so
on a multi-rack fabric most tree edges cross rack boundaries and every one
of them claims a slot on the shared ToR uplinks — at 4:1 oversubscription the
whole tree serializes behind one or two tier slots.  The hierarchical
composition reduces each rack's sources *inside* the rack first (no shared
link touched), then runs one inter-rack tree over the per-rack partials, so
exactly one stream leaves each rack:

    intra-rack reduce  →  inter-rack tree  →  (receivers ``Get`` the target,
    which the locality-aware directory turns into one cross-rack copy per
    rack followed by intra-rack relays — the broadcast half of allreduce)

Both phases are ordinary :class:`~repro.core.reduce.ReduceExecution`s, so
fine-grained block pipelining crosses the phase boundary for free: a rack
root publishes its partial location the moment it starts producing, and the
inter-rack tree streams those blocks while the rack trees are still
reducing.  Failure repair is inherited per phase — a dead rack member is
replaced inside its rack's tree, a dead rack root re-publishes through the
rack tree's own repair and the top tree re-resolves it through the
directory.

The composition is transparent to callers and to the lineage layer:
:func:`~repro.core.reduce.adopt_or_create_reduction` picks it automatically
(``HopliteOptions(topology_aware=True)`` on a multi-rack topology), it
registers in ``runtime.active_reductions`` under the original target like a
flat execution, and a re-executed caller adopts the surviving composition
instead of racing a duplicate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Sequence

from repro.core.reduce import ReduceExecution, ReduceResult
from repro.net.node import Node
from repro.net.transport import TransferError
from repro.sim import Event, Interrupt, Process
from repro.store.objects import ObjectID, ReduceOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import HopliteRuntime


class HierarchicalReduceExecution:
    """Coordinator for one rack-aware Reduce call.

    Duck-type compatible with :class:`~repro.core.reduce.ReduceExecution`
    where the rest of the system touches executions: re-entrant :meth:`run`,
    :meth:`abort`, and the ``source_ids`` / ``op`` / ``num_objects`` /
    ``aborted`` attributes the adoption check compares.
    """

    def __init__(
        self,
        runtime: "HopliteRuntime",
        caller: Node,
        target_id: ObjectID,
        source_ids: Sequence[ObjectID],
        op: ReduceOp,
        num_objects: Optional[int] = None,
    ):
        if not source_ids:
            raise ValueError("Reduce requires at least one source object")
        self.runtime = runtime
        self.sim = runtime.sim
        self.config = runtime.config
        self.caller = caller
        self.target_id = target_id
        self.source_ids = list(source_ids)
        self.op = op
        self.num_objects = num_objects if num_objects is not None else len(self.source_ids)
        if self.num_objects <= 0 or self.num_objects > len(self.source_ids):
            raise ValueError(
                f"num_objects must be in [1, {len(self.source_ids)}], got {num_objects}"
            )
        self.degree: Optional[int] = None
        #: rack index -> the intra-rack chain of fold executions (one entry in
        #: the synchronized case; one extra stage per straggler batch).
        self.rack_executions: dict[int, list[ReduceExecution]] = {}
        #: the inter-rack tree (or the flat fallback when grouping degenerates).
        self.top_execution: Optional[ReduceExecution] = None
        self._finished = Event(self.sim)
        self._driver: Optional[Process] = None
        self._result: Optional[ReduceResult] = None
        self.aborted = False
        self.abort_reason = ""

    # -- public entry point --------------------------------------------------
    def run(self) -> Generator:
        """Wait for the composed reduce; starts the driver if needed.

        Re-entrant, like the flat execution: the original caller and any
        lineage re-execution adopting this composition all get the same
        result.
        """
        self._ensure_driver()
        yield self._finished
        if self.aborted:
            raise TransferError(
                f"reduce toward {self.target_id} was aborted: {self.abort_reason}"
            )
        return self._result

    def _ensure_driver(self) -> None:
        if self._driver is not None or self._finished.triggered:
            return
        registry = self.runtime.active_reductions
        registry[self.target_id] = self

        def _deregister(_event) -> None:
            if registry.get(self.target_id) is self:
                del registry[self.target_id]

        self._finished.add_callback(_deregister)
        self._driver = self.runtime.orchestration.spawn(
            self._drive(),
            name=f"hier-reduce-drive-{self.target_id}",
            owner=self.target_id,
        )

    def abort(self, reason: str = "") -> None:
        """Tear down both phases (called by the framework on permanent failure)."""
        if self._finished.triggered:
            return
        self.aborted = True
        self.abort_reason = reason or "aborted"
        if self._driver is not None and self._driver.is_alive:
            self._driver.interrupt("hierarchical reduce aborted")
        for execution in self._all_rack_executions():
            execution.abort(self.abort_reason)
        if self.top_execution is not None:
            self.top_execution.abort(self.abort_reason)
        self._finished.succeed(None)

    # -- coordination --------------------------------------------------------
    def _drive(self) -> Generator:
        try:
            top_sources = yield from self._grow_rack_trees()
            if top_sources is None:
                # Degenerate hierarchy — every source in one rack, or one
                # source per rack: a single dynamic tree is already optimal.
                # The flat execution takes over the registry entry (it is
                # adoptable under the exact same signature).
                inner = ReduceExecution(
                    self.runtime,
                    self.caller,
                    self.target_id,
                    self.source_ids,
                    self.op,
                    num_objects=self.num_objects,
                )
                self.top_execution = inner
                result = yield from inner.run()
                self._complete(result, result.reduced_ids)
                return

            top = ReduceExecution(
                self.runtime, self.caller, self.target_id, top_sources, self.op
            )
            self.top_execution = top
            top._ensure_driver()
            # The top tree registered itself under the target; put the
            # composition back so lineage re-executions (which re-issue the
            # *original* source list) adopt it instead of mismatching.
            self.runtime.active_reductions[self.target_id] = self
            result = yield from top.run()

            source_set = set(self.source_ids)
            reduced: set[ObjectID] = set()
            for rack_execution in self._all_rack_executions():
                reduced.update(
                    state.object_id
                    for state in rack_execution.slots
                    if state.object_id is not None and state.object_id in source_set
                )
            reduced.update(oid for oid in result.reduced_ids if oid in source_set)
            self._complete(result, sorted(reduced, key=lambda oid: oid.key))
        except Interrupt:
            return
        except TransferError:
            # A phase was aborted under us; propagate unless someone already
            # finished or aborted the composition itself.
            if not self._finished.triggered:
                self.abort("reduce phase aborted")
        except Exception as exc:  # noqa: BLE001 - nobody awaits this process
            self.abort(f"driver error: {exc!r}")

    def _all_rack_executions(self) -> list[ReduceExecution]:
        return [ex for chain in self.rack_executions.values() for ex in chain]

    def _complete(self, result: ReduceResult, reduced_ids) -> None:
        reduced = list(reduced_ids)
        reduced_set = set(reduced)
        self.degree = result.degree
        self._result = ReduceResult(
            target_id=self.target_id,
            reduced_ids=reduced,
            unreduced_ids=[oid for oid in self.source_ids if oid not in reduced_set],
            degree=result.degree,
            root_node_id=result.root_node_id,
            completion_time=result.completion_time,
        )
        if not self._finished.triggered:
            self._finished.succeed(self._result)

    # -- grouping ------------------------------------------------------------
    def _grow_rack_trees(self) -> Generator:
        """Locate sources and grow per-rack reduce trees as they arrive.

        Returns the inter-rack top source list, or ``None`` when the
        hierarchy degenerates (every source in one rack, or one source per
        rack) and the flat tree should take over.

        Unlike a bin-then-build pass, a rack tree starts the moment its rack
        has two ready sources — start-on-first-arrival holds under staggered
        arrivals.  Each later arrival folds into the rack's running partial
        as a chained two-input stage, so a straggler costs one extra
        intra-rack edge instead of stalling the whole hierarchy behind the
        last ``Put``.  In the synchronized case every creation event has
        already fired, all sources drain in the first pass, and each rack
        folds exactly once — the same executions, names and creation order
        as the old group-then-build construction.
        """
        directory = self.runtime.directory
        pending: dict[int, list[ObjectID]] = {}  # located, not yet folded
        partials: dict[int, ObjectID] = {}  # rack -> chain-head partial id
        remaining = list(self.source_ids)
        located = 0
        nonce: Optional[int] = None

        def fold(rack: int) -> None:
            nonlocal nonce
            inputs = pending.pop(rack)
            if rack in partials:
                inputs = [partials[rack]] + inputs
            if nonce is None:
                nonce = self.runtime.hierarchical_reduce_seq
                self.runtime.hierarchical_reduce_seq += 1
            chain = self.rack_executions.setdefault(rack, [])
            suffix = f"-g{len(chain)}" if chain else ""
            rack_target = self.target_id.derived(f"hier{nonce}-rack{rack}{suffix}")
            execution = ReduceExecution(
                self.runtime, self._rack_caller(rack), rack_target, inputs, self.op
            )
            chain.append(execution)
            execution._ensure_driver()
            self.runtime.orchestration.record_partial(self.target_id, rack_target)
            partials[rack] = rack_target

        while located < self.num_objects:
            events = [(oid, directory.creation_event(oid)) for oid in remaining]
            yield self.sim.any_of([event for _oid, event in events])
            progress = False
            still: list[ObjectID] = []
            for oid, event in events:
                rack = None
                if event.triggered and located < self.num_objects:
                    rack = self._rack_of_object(oid)
                if rack is None:
                    still.append(oid)
                else:
                    pending.setdefault(rack, []).append(oid)
                    located += 1
                    progress = True
            remaining = still
            if not progress:
                # A source was created but its only copy died with its node;
                # wait out a detection delay for reconstruction to re-Put it.
                yield self.sim.timeout(self.config.failure_detection_delay)
                continue
            # Fold every rack holding two ready inputs — but only once a
            # second rack exists (an all-one-rack reduce must stay eligible
            # for the flat fallback), and only while arrivals are still
            # outstanding (the last pass is handled below, where the
            # synchronized case folds each rack exactly once).
            if len(pending.keys() | partials.keys()) >= 2 and located < self.num_objects:
                for rack in sorted(pending):
                    if len(pending[rack]) + (1 if rack in partials else 0) >= 2:
                        fold(rack)

        racks = sorted(pending.keys() | partials.keys())
        if not partials and (
            len(racks) <= 1 or max(len(ids) for ids in pending.values()) <= 1
        ):
            return None
        # Membership is complete: fold whatever is still unfolded into its
        # rack's chain (or start the chain, for racks first seen late).
        for rack in sorted(pending):
            if len(pending[rack]) + (1 if rack in partials else 0) >= 2:
                fold(rack)
        top_sources: list[ObjectID] = []
        for rack in racks:
            if rack in partials:
                top_sources.append(partials[rack])
            else:
                # A single-source rack contributes its raw object directly.
                top_sources.append(pending[rack][0])
        return top_sources

    def _rack_of_object(self, object_id: ObjectID) -> Optional[int]:
        """The rack hosting the object's best alive copy (``None`` if lost)."""
        topology = self.runtime.cluster.topology
        locations = self.runtime.directory.locations_of(object_id)
        for info in sorted(locations.values(), key=lambda i: (not i.complete, i.node_id)):
            if self.runtime.node(info.node_id).alive:
                return topology.rack_of(info.node_id)
        record = self.runtime.directory.peek_record(object_id)
        if record is not None and record.inline_value is not None:
            # Inline-cached small object: fetchable from anywhere; group it
            # with the caller so it never forces a cross-rack stream.
            return topology.rack_of(self.caller.node_id)
        return None

    def _rack_caller(self, rack: int) -> Node:
        """A representative alive node inside ``rack`` (the caller if none)."""
        for node_id in self.runtime.cluster.topology.rack_nodes(rack):
            node = self.runtime.node(node_id)
            if node.alive:
                return node
        return self.caller
