"""Dynamic tree reduce (Section 3.4.2) with failure repair (Section 3.5.2).

A ``Reduce`` call names a target ObjectID, a list of candidate source
ObjectIDs, a reduce operator, and optionally ``num_objects`` (reduce only the
first ``num_objects`` sources that become ready).  Hoplite:

1. picks a tree degree ``d`` from the analytical model
   ``T(1) = n·L + S/B`` and ``T(d) = L·log_d(n) + d·S/B`` (the implementation
   considers ``d ∈ {1, 2, n}``, like the paper's);
2. lays the first ``n`` *ready* objects onto a ``d``-ary tree whose
   generalized in-order traversal equals the arrival order, so early arrivals
   sit deep in the tree and can start reducing immediately;
3. streams partial results up the tree block by block (fine-grained
   pipelining), so the total time approaches ``S/B`` plus a per-hop latency
   term instead of a per-participant bandwidth term;
4. on a participant failure, replaces the failed slot with the next ready
   source object (possibly the reconstructed one), clears the partial results
   of the failed slot's ancestors — at most ``log_d n`` of them — and resumes.

The final reduced object is published under the target ObjectID at the tree
root's node; callers obtain it with a normal ``Get``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Optional, Sequence

from repro.net.coalesce import (
    ComputeRun,
    build_pull_run,
    coalesce_eligible,
    input_coverage,
    nic_path_links,
    ready_time_of,
    register_stream,
    unregister_stream,
)
from repro.net import convoy
from repro.net.convoy import StreamHandle
from repro.net.flowsched import ADOPTED, Flow, FlowClass
from repro.net.node import Node
from repro.net.transport import TransferError, local_copy_block, transfer_block
from repro.sim import Event, Interrupt, Process
from repro.store.object_store import StoredObject
from repro.store.objects import ObjectID, ReduceOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import HopliteRuntime


# ---------------------------------------------------------------------------
# Degree selection model
# ---------------------------------------------------------------------------


def reduce_time_model(
    num_objects: int,
    degree: int,
    object_size: float,
    latency: float,
    bandwidth: float,
) -> float:
    """Estimated completion time of a ``degree``-ary reduce tree (Equation 1).

    ``degree == 0`` or ``degree >= num_objects`` means the flat tree where the
    root receives every object directly.
    """
    if num_objects <= 1:
        return latency
    transfer = object_size / bandwidth
    if degree <= 0 or degree >= num_objects:
        return latency + (num_objects - 1) * transfer
    if degree == 1:
        return num_objects * latency + transfer
    height = math.log(num_objects) / math.log(degree)
    return latency * height + degree * transfer


def choose_reduce_degree(
    num_objects: int,
    object_size: float,
    latency: float,
    bandwidth: float,
    candidates: Sequence[int] = (1, 2, 0),
) -> int:
    """Pick the candidate degree minimizing :func:`reduce_time_model`.

    Returns the *effective* degree: ``num_objects`` is substituted for the
    flat-tree candidate ``0``.
    """
    if num_objects <= 1:
        return 1
    best_degree = None
    best_time = float("inf")
    for candidate in candidates:
        effective = num_objects if candidate == 0 else candidate
        estimate = reduce_time_model(num_objects, candidate, object_size, latency, bandwidth)
        if estimate < best_time - 1e-15:
            best_time = estimate
            best_degree = effective
    return best_degree if best_degree is not None else 2


# ---------------------------------------------------------------------------
# Tree shape: generalized in-order placement
# ---------------------------------------------------------------------------


@dataclass
class TreeSlot:
    """A position in the reduce tree, identified by arrival rank."""

    rank: int
    parent: Optional[int] = None
    children: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


def build_inorder_tree(num_slots: int, degree: int) -> list[TreeSlot]:
    """Build a ``degree``-ary tree over ranks ``0..num_slots-1``.

    The generalized in-order traversal (first child subtree, the node, then
    the remaining child subtrees) of the returned tree is exactly
    ``0, 1, ..., num_slots - 1`` — so assigning the *i*-th arriving object to
    rank *i* reproduces the paper's placement rule.
    """
    if num_slots <= 0:
        return []
    if degree <= 0:
        degree = num_slots
    slots = [TreeSlot(rank=rank) for rank in range(num_slots)]

    def split(count: int, parts: int) -> list[int]:
        base, extra = divmod(count, parts)
        return [base + (1 if index < extra else 0) for index in range(parts)]

    def build(lo: int, hi: int, parent: Optional[int]) -> Optional[int]:
        count = hi - lo
        if count <= 0:
            return None
        if count == 1:
            root = lo
        elif degree == 1:
            root = hi - 1
            build(lo, hi - 1, root)
        else:
            sizes = split(count - 1, degree)
            first = sizes[0]
            root = lo + first
            build(lo, lo + first, root)
            offset = root + 1
            for size in sizes[1:]:
                if size > 0:
                    build(offset, offset + size, root)
                    offset += size
        slots[root].parent = parent
        if parent is not None:
            slots[parent].children.append(root)
        return root

    build(0, num_slots, None)
    return slots


def inorder_traversal(slots: Sequence[TreeSlot]) -> list[int]:
    """Generalized in-order traversal of the tree (used by tests)."""
    if not slots:
        return []
    roots = [slot.rank for slot in slots if slot.parent is None]
    order: list[int] = []

    def visit(rank: int) -> None:
        slot = slots[rank]
        children = slot.children
        if children:
            visit(children[0])
        order.append(rank)
        for child in children[1:]:
            visit(child)

    for root in roots:
        visit(root)
    return order


def tree_depth(slots: Sequence[TreeSlot]) -> int:
    """Height of the tree in edges."""
    if not slots:
        return 0

    def depth(rank: int) -> int:
        children = slots[rank].children
        if not children:
            return 0
        return 1 + max(depth(child) for child in children)

    roots = [slot.rank for slot in slots if slot.parent is None]
    return max(depth(root) for root in roots)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def adopt_or_create_reduction(
    runtime: "HopliteRuntime",
    caller: Node,
    target_id: ObjectID,
    source_ids: Sequence[ObjectID],
    op: ReduceOp,
    num_objects: Optional[int] = None,
):
    """The execution for ``target_id``: the surviving one, or a fresh one.

    A re-executed caller (Section 6 lineage re-execution) that issues the
    same Reduce again while the previous invocation's detached driver is
    still alive must *adopt* the surviving tree — its partials keep
    streaming — rather than race a duplicate tree over the same target.
    Only an execution with the same sources and operator is adoptable; an
    aborted or mismatched one is replaced.

    On a multi-rack topology with ``HopliteOptions(topology_aware=True)``
    fresh executions are the rack-aware hierarchical composition
    (:class:`~repro.core.hierarchical.HierarchicalReduceExecution`: one
    intra-rack tree per rack feeding one inter-rack tree); everywhere else —
    notably the flat default — they are the plain dynamic tree.
    """
    num = num_objects if num_objects is not None else len(list(source_ids))
    existing = runtime.active_reductions.get(target_id)
    if (
        existing is not None
        and not existing.aborted
        and existing.op is op
        and list(existing.source_ids) == list(source_ids)
        and existing.num_objects == num
    ):
        runtime.reduce_adoptions += 1
        return existing
    topology = runtime.cluster.topology
    if runtime.options.topology_aware and topology.num_racks > 1 and num >= 3:
        from repro.core.hierarchical import HierarchicalReduceExecution

        return HierarchicalReduceExecution(
            runtime, caller, target_id, source_ids, op, num_objects=num_objects
        )
    return ReduceExecution(
        runtime, caller, target_id, source_ids, op, num_objects=num_objects
    )


@dataclass
class ReduceResult:
    """Outcome of a completed Reduce call."""

    target_id: ObjectID
    reduced_ids: list[ObjectID]
    unreduced_ids: list[ObjectID]
    degree: int
    root_node_id: int
    completion_time: float


@dataclass
class ReducePlan:
    """The static description of a reduce: sources, operator, degree, shape."""

    target_id: ObjectID
    source_ids: list[ObjectID]
    op: ReduceOp
    num_objects: int
    degree: int
    slots: list[TreeSlot]


class _SlotState:
    """Runtime state of one tree slot during execution."""

    def __init__(self, slot: TreeSlot):
        self.slot = slot
        self.object_id: Optional[ObjectID] = None
        self.host: Optional[Node] = None
        #: Bumped whenever the slot is (re)assigned or its subtree changes, so
        #: stale partial data is never confused with fresh data.
        self.generation = 0
        self.assigned_events: list[Event] = []
        self.process: Optional[Process] = None
        self.stream_processes: list[Process] = []
        self.output_entry: Optional[StoredObject] = None
        #: set by the repair when this (root) slot's host died: the restarted
        #: slot seeds its target prefix from the best surviving partial copy.
        self.seed_prefix = False

    @property
    def rank(self) -> int:
        return self.slot.rank

    @property
    def assigned(self) -> bool:
        return self.object_id is not None and self.host is not None

    def assignment_event(self, sim) -> Event:
        event = Event(sim)
        if self.assigned:
            event.succeed(self)
        else:
            self.assigned_events.append(event)
        return event

    def notify_assigned(self) -> None:
        waiters, self.assigned_events = self.assigned_events, []
        for event in waiters:
            if not event.triggered:
                event.succeed(self)


class ReduceExecution:
    """Coordinator for one Reduce call.

    Created by :meth:`HopliteClient.reduce`.  The coordination loop — watch
    sources, assign arrivals to tree slots, spawn the per-slot streaming
    reduce processes, repair the tree on node failures — runs as a *detached
    driver process* obtained through the runtime's orchestration hook, so it
    survives the death of the calling task (Section 6: the caller is
    re-executed from lineage, but the collective keeps making progress in
    the meantime).  :meth:`run` merely waits for completion and is
    re-entrant: a re-executed caller that finds this execution still in
    ``runtime.active_reductions`` adopts it by calling :meth:`run` again
    instead of racing a duplicate tree over the same target.
    """

    def __init__(
        self,
        runtime: "HopliteRuntime",
        caller: Node,
        target_id: ObjectID,
        source_ids: Sequence[ObjectID],
        op: ReduceOp,
        num_objects: Optional[int] = None,
    ):
        if not source_ids:
            raise ValueError("Reduce requires at least one source object")
        self.runtime = runtime
        self.sim = runtime.sim
        self.config = runtime.config
        self.caller = caller
        self.target_id = target_id
        self.source_ids = list(source_ids)
        self.op = op
        self.num_objects = num_objects if num_objects is not None else len(self.source_ids)
        if self.num_objects <= 0 or self.num_objects > len(self.source_ids):
            raise ValueError(
                f"num_objects must be in [1, {len(self.source_ids)}], got {num_objects}"
            )
        self.degree: Optional[int] = None
        self.slots: list[_SlotState] = []
        self.tree: list[TreeSlot] = []
        #: object ids that have become ready and await a slot.
        self._ready_queue: list[ObjectID] = []
        self._ready_waiters: list[Event] = []
        #: ids already placed in (or permanently excluded from) the tree.
        self._assigned_ids: set[ObjectID] = set()
        self._watched: set[ObjectID] = set()
        self._finished = Event(self.sim)
        self._failure_hooked = False
        self.plan: Optional[ReducePlan] = None
        self._driver: Optional[Process] = None
        self.aborted = False
        self.abort_reason = ""

    # -- public entry point --------------------------------------------------
    def run(self) -> Generator:
        """Wait for the reduce to complete; starts the driver if needed.

        Re-entrant: every caller — the original one and any re-executed
        caller adopting this execution — gets the same result.
        """
        self._ensure_driver()
        # Wait for the root's output to be sealed and published.
        yield self._finished
        if self.aborted:
            raise TransferError(
                f"reduce toward {self.target_id} was aborted: {self.abort_reason}"
            )
        root = self._root_slot()
        reduced = sorted(
            (state.object_id for state in self.slots if state.object_id is not None),
            key=lambda oid: oid.key,
        )
        unreduced = [oid for oid in self.source_ids if oid not in set(reduced)]
        return ReduceResult(
            target_id=self.target_id,
            reduced_ids=list(reduced),
            unreduced_ids=unreduced,
            degree=self.degree,
            root_node_id=root.host.node_id if root.host is not None else -1,
            completion_time=self.sim.now,
        )

    def _ensure_driver(self) -> None:
        """Start the detached coordination process (once) and register it."""
        if self._driver is not None or self._finished.triggered:
            return
        registry = self.runtime.active_reductions
        registry[self.target_id] = self

        def _deregister(_event) -> None:
            if registry.get(self.target_id) is self:
                del registry[self.target_id]

        self._finished.add_callback(_deregister)
        self._driver = self.runtime.orchestration.spawn(
            self._drive(),
            name=f"reduce-drive-{self.target_id}",
            owner=self.target_id,
        )

    def _drive(self) -> Generator:
        """The detached coordination loop (watch → shape → assign → repair)."""
        try:
            for object_id in self.source_ids:
                self._watch_source(object_id)

            # Learn the object size from the first ready source, then fix the
            # degree and the tree shape.
            first_id = yield from self._next_ready_object()
            size = self.runtime.directory.known_size(first_id) or 0
            self.degree = self._select_degree(size)
            self.tree = build_inorder_tree(self.num_objects, self.degree)
            self.slots = [_SlotState(slot) for slot in self.tree]
            self.plan = ReducePlan(
                target_id=self.target_id,
                source_ids=list(self.source_ids),
                op=self.op,
                num_objects=self.num_objects,
                degree=self.degree,
                slots=self.tree,
            )
            self._hook_failures()

            self._assign(self._next_unassigned_slot(), first_id)
            # Keep assigning ready objects to the remaining slots as they arrive.
            while self._next_unassigned_slot() is not None:
                object_id = yield from self._next_ready_object()
                slot = self._next_unassigned_slot()
                if slot is None:
                    self._ready_queue.insert(0, object_id)
                    break
                self._assign(slot, object_id)
        except Interrupt:
            return
        except Exception as exc:  # noqa: BLE001 - nobody awaits this process
            # The driver is detached: an escaping exception would strand
            # every waiter in run() forever.  Turn it into an abort so
            # waiters observe a TransferError and can retry.
            self.abort(f"driver error: {exc!r}")

    def abort(self, reason: str = "") -> None:
        """Tear the execution down and release everything it holds.

        Called by the task framework when the computation that owns this
        reduce is abandoned (exhausted ``max_restarts``): the driver and all
        slot/stream processes are interrupted — their cleanup handlers drop
        the reference counts they hold on partials — and waiters in
        :meth:`run` observe a :class:`TransferError`.
        """
        if self._finished.triggered:
            return
        self.aborted = True
        self.abort_reason = reason or "aborted"
        if self._driver is not None and self._driver.is_alive:
            self._driver.interrupt("reduce aborted")
        for state in self.slots:
            self._teardown_slot(state)
        self._finished.succeed(None)

    # -- degree / shape --------------------------------------------------------
    def _select_degree(self, size: int) -> int:
        options = self.runtime.options
        if options.reduce_degree is not None:
            degree = options.reduce_degree
            return self.num_objects if degree == 0 else min(degree, max(1, self.num_objects))
        return choose_reduce_degree(
            self.num_objects,
            size,
            self.config.latency,
            self.config.bandwidth,
            options.candidate_reduce_degrees,
        )

    def _root_slot(self) -> _SlotState:
        for state in self.slots:
            if state.slot.parent is None:
                return state
        raise RuntimeError("reduce tree has no root")  # pragma: no cover

    # -- readiness tracking -----------------------------------------------------
    def _watch_source(self, object_id: ObjectID) -> None:
        """Watch for ``object_id`` becoming available (possibly again, after a failure)."""
        if object_id in self._watched:
            return
        self._watched.add(object_id)
        self.sim.process(
            self._watch_process(object_id), name=f"reduce-watch-{object_id}"
        )

    def _watch_process(self, object_id: ObjectID) -> Generator:
        directory = self.runtime.directory
        event = directory.creation_event(object_id)
        yield event
        self._watched.discard(object_id)
        if object_id in self._assigned_ids:
            return
        self._ready_queue.append(object_id)
        waiters, self._ready_waiters = self._ready_waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()

    def _next_ready_object(self) -> Generator:
        """Block until some unassigned source object is ready; return its id."""
        while True:
            while self._ready_queue:
                object_id = self._ready_queue.pop(0)
                if object_id in self._assigned_ids:
                    continue
                host = self._locate(object_id)
                if host is None:
                    # Object existed but its only copy is gone (e.g. the node
                    # failed); watch for it to reappear.
                    self._watch_source(object_id)
                    continue
                return object_id
            waiter = Event(self.sim)
            self._ready_waiters.append(waiter)
            yield waiter

    def _locate(self, object_id: ObjectID) -> Optional[Node]:
        """The node currently holding ``object_id`` (prefer complete copies)."""
        directory = self.runtime.directory
        locations = directory.locations_of(object_id)
        best: Optional[Node] = None
        for info in sorted(locations.values(), key=lambda i: (not i.complete, i.node_id)):
            node = self.runtime.node(info.node_id)
            if node.alive:
                best = node
                break
        return best

    # -- assignment --------------------------------------------------------------
    def _next_unassigned_slot(self) -> Optional[_SlotState]:
        for state in self.slots:
            if not state.assigned:
                return state
        return None

    def _assign(self, state: _SlotState, object_id: ObjectID) -> None:
        if state.assigned:
            # Never overwrite a live assignment; keep the object available for
            # another slot instead.
            if object_id not in self._assigned_ids:
                self._ready_queue.insert(0, object_id)
            return
        host = self._locate(object_id)
        if host is None:
            # Lost between readiness and assignment: put it back on watch.
            self._watch_source(object_id)
            return
        state.object_id = object_id
        state.host = host
        state.generation += 1
        self._assigned_ids.add(object_id)
        size = self.runtime.directory.known_size(object_id) or 0
        if not state.slot.is_leaf or state.slot.parent is None:
            self._create_output_entry(state, size)
        state.notify_assigned()
        if not state.slot.is_leaf or state.slot.parent is None:
            self._spawn_slot_process(state)

    def _output_id(self, state: _SlotState) -> ObjectID:
        if state.slot.parent is None:
            return self.target_id
        return self.target_id.derived(f"partial-r{state.rank}-g{state.generation}")

    def _create_output_entry(self, state: _SlotState, size: int) -> None:
        store = self.runtime.store(state.host)
        output_id = self._output_id(state)
        entry = store.try_get_entry(output_id)
        if entry is None:
            entry = store.create(output_id, size)
        elif entry.sealed:
            # A stale sealed copy of the target id (only possible for the
            # root after a repair): drop and recreate.
            store.delete(output_id)
            entry = store.create(output_id, size)
        state.output_entry = entry
        self.runtime.orchestration.record_partial(
            self.target_id, output_id, state.host.node_id
        )

    # -- slot processes -------------------------------------------------------------
    def _spawn_slot_process(self, state: _SlotState) -> None:
        state.process = self.runtime.orchestration.spawn(
            self._run_slot(state, state.generation),
            name=f"reduce-slot-{self.target_id}-r{state.rank}",
            owner=self.target_id,
        )

    def _run_slot(self, state: _SlotState, generation: int) -> Generator:
        """Streaming reduce at one internal tree slot (or a single-node root)."""
        try:
            runtime = self.runtime
            config = self.config
            node = state.host
            store = runtime.store(node)
            output = state.output_entry
            is_root = state.slot.parent is None

            if is_root:
                yield from runtime.directory.publish_partial(
                    node, self.target_id, output.size, upstream=None
                )
                if state.seed_prefix:
                    state.seed_prefix = False
                    yield from self._seed_root_prefix(state)
                    if not node.alive:
                        return

            own_entry = store.try_get_entry(state.object_id)
            if own_entry is None:
                raise TransferError(
                    f"source {state.object_id} missing on node {node.node_id}", node=node
                )

            # Start one streaming pull per child.
            stagings: list[StoredObject] = []
            child_states = [self.slots[rank] for rank in state.slot.children]
            for child in child_states:
                staging = store.create_or_get(
                    self.target_id.derived(
                        f"stage-r{state.rank}-c{child.rank}-g{generation}"
                    ),
                    output.size,
                )
                stagings.append(staging)
                runtime.orchestration.record_partial(
                    self.target_id, staging.object_id, node.node_id
                )
                proc = runtime.orchestration.spawn(
                    self._stream_child(state, child, staging),
                    name=(
                        f"reduce-stream-{self.target_id}-r{state.rank}-c{child.rank}"
                    ),
                    owner=self.target_id,
                )
                state.stream_processes.append(proc)

            inputs = [own_entry] + stagings
            # Reference the partials this slot is actively producing so a
            # capacity-limited store never evicts them mid-reduce.
            guarded = [output] + stagings
            for entry in guarded:
                entry.ref_count += 1
            try:
                weight = max(1, len(inputs) - 1)
                # Resume where the output already has blocks: zero on every
                # fresh entry, the preserved/seeded prefix after a streaming
                # repair (receivers that kept those blocks never re-pull them).
                block_index = output.blocks_ready
                while block_index < output.num_blocks:
                    # Coalesced fast path: every block whose inputs are
                    # present or arriving on a known schedule combines by
                    # arithmetic (see ComputeRun in net/coalesce); the
                    # output's own schedule lets the parent stream cascade.
                    if not output._no_coalesce:
                        horizon = output.num_blocks
                        for entry in inputs:
                            horizon = input_coverage(entry, horizon)
                        if horizon - block_index >= 2:
                            compute_times = []
                            ready_times = []
                            for k in range(block_index, horizon):
                                nbytes = config.block_bytes(output.size, k)
                                compute_times.append(
                                    config.reduce_compute_time(nbytes) * weight
                                )
                                ready = 0.0
                                for entry in inputs:
                                    when = ready_time_of(entry, k)
                                    if when > ready:
                                        ready = when
                                ready_times.append(ready)
                            run = ComputeRun(
                                self.sim,
                                node,
                                output,
                                block_index,
                                compute_times,
                                ready_times,
                                [
                                    entry._inflight
                                    for entry in inputs
                                    if entry._inflight is not None
                                ],
                            )
                            block_index += yield from run.run()
                            if run.failure_stop:
                                return
                            continue
                    for entry in inputs:
                        if entry.blocks_ready <= block_index:
                            if entry._inflight is not None:
                                # Parking outside a ComputeRun: per-block
                                # mark ordering required (see _pull_blocks).
                                entry.decoalesce()
                            yield self._race_own_failure(
                                entry.wait_for_blocks(block_index + 1), node
                            )
                            if not node.alive:
                                return
                    nbytes = config.block_bytes(output.size, block_index)
                    compute_time = config.reduce_compute_time(nbytes) * weight
                    if compute_time > 0:
                        yield self.sim.timeout(compute_time)
                    output.mark_block_ready(block_index)
                    block_index += 1

                payloads = [own_entry.payload]
                for child, staging in zip(child_states, stagings):
                    payloads.append(staging.payload)
                output.seal(self.op.combine_many(payloads))
            finally:
                for entry in guarded:
                    entry.ref_count -= 1

            if is_root:
                yield from runtime.directory.publish_complete(
                    node, self.target_id, output.size
                )
                if not self._finished.triggered:
                    self._finished.succeed(output)
        except Interrupt:
            return
        except TransferError:
            # The coordinator's failure hook drives the repair; this process
            # simply stops.
            return

    def _seed_root_prefix(self, state: _SlotState) -> Generator:
        """Seed the re-created root target from the best surviving partial copy.

        Streaming allreduce recovery (carried ROADMAP item): receivers that
        were pulling the target before the root died still hold its prefix in
        their local stores.  Instead of recomputing — and re-broadcasting —
        the whole target, the new root pulls the longest surviving prefix
        back from the most advanced receiver (ties broken by lowest node id,
        deterministically) and resumes the reduce at that block; the
        receivers then resume their own streams where they left off.  Any
        failure mid-seed degrades gracefully to recomputing from wherever
        the seed got to.
        """
        runtime = self.runtime
        config = self.config
        node = state.host
        output = state.output_entry
        best_entry: Optional[StoredObject] = None
        best_node: Optional[Node] = None
        for node_id in sorted(runtime.stores):
            peer = runtime.node(node_id)
            if not peer.alive or node_id == node.node_id:
                continue
            entry = runtime.stores[node_id].try_get_entry(self.target_id)
            if entry is None or entry.blocks_ready <= 0:
                continue
            if best_entry is None or entry.blocks_ready > best_entry.blocks_ready:
                best_entry = entry
                best_node = peer
        if best_entry is None:
            return
        # Snapshot the prefix length now: the donor's own (dead) upstream can
        # deliver nothing more, so only what is present is worth copying.
        prefix = min(best_entry.blocks_ready, output.num_blocks)
        if output.blocks_ready >= prefix:
            return
        flow = Flow(
            f"reduce-seed:{self.target_id}:n{best_node.node_id}->n{node.node_id}",
            FlowClass.REDUCE_PARTIAL,
        )
        donor_store = runtime.store(best_node)
        local_store = runtime.store(node)
        # Reference the donor's copy so a capacity-limited store cannot
        # evict the prefix while it is being pulled back.
        best_entry.ref_count += 1
        try:
            block_index = output.blocks_ready
            while block_index < prefix:
                if not best_node.alive or not node.alive:
                    return
                if best_entry.blocks_ready <= block_index:
                    # The donor lost the prefix mid-seed (eviction/failure);
                    # recompute from wherever the seed got to.
                    return
                nbytes = config.block_bytes(output.size, block_index)
                try:
                    yield from transfer_block(
                        config, best_node, node, nbytes, flow
                    )
                except TransferError:
                    return
                donor_store.account_flow_out(flow, nbytes)
                local_store.account_flow_in(flow, nbytes)
                output.mark_block_ready(block_index)
                block_index += 1
            runtime.root_prefix_seeds += 1
        finally:
            best_entry.ref_count -= 1

    def _stream_child(
        self, parent_state: _SlotState, child_state: _SlotState, staging: StoredObject
    ) -> Generator:
        """Pull the child's (partial) output into the parent's staging entry."""
        try:
            runtime = self.runtime
            config = self.config
            if not child_state.assigned:
                yield child_state.assignment_event(self.sim)
            child_node = child_state.host
            child_store = runtime.store(child_node)
            if child_state.slot.is_leaf:
                child_output_id = child_state.object_id
            else:
                child_output_id = self._output_id(child_state)
            child_entry = child_store.try_get_entry(child_output_id)
            if child_entry is None:
                raise TransferError(
                    f"child output {child_output_id} missing on node {child_node.node_id}",
                    node=child_node,
                )
            parent_node = parent_state.host
            same_node = child_node.node_id == parent_node.node_id
            # Reduce partials ride the REDUCE_PARTIAL flow class: they cut
            # ahead of bulk broadcast traffic in the link admission queues,
            # since one late partial stalls the whole subtree above it.
            flow = Flow(
                f"reduce:{self.target_id}:n{child_node.node_id}->n{parent_node.node_id}",
                FlowClass.REDUCE_PARTIAL,
            )
            # Reference the child's output while streaming from it so a
            # capacity-limited child store cannot evict it mid-stream.
            child_entry.ref_count += 1
            # Announce the stream so a coalesced run sharing one of these
            # links re-splits before the per-block interleaving starts.
            if same_node:
                links = [(parent_node.memcpy_channel, None)]
                account_out = account_in = None
            else:
                links = nic_path_links(child_node, parent_node)
                parent_store = runtime.store(parent_node)
                account_out = lambda nb: child_store.account_flow_out(flow, nb)  # noqa: E731
                account_in = lambda nb: parent_store.account_flow_in(flow, nb)  # noqa: E731
            handle = StreamHandle(
                "copy" if same_node else "nic",
                config,
                parent_node if same_node else child_node,
                parent_node,
                flow,
                links,
                staging,
                source_entry=child_entry,
                account_out=account_out,
                account_in=account_in,
            )
            register_stream(links, handle)
            config_ = self.runtime.config
            try:
                while staging.blocks_ready < staging.num_blocks:
                    handle.phase = convoy.TOP
                    run = handle.adopted_run
                    if run is not None:
                        # A convoy (typically the parent's fan-in) formed
                        # around this stream; drive our planned share of it.
                        handle.adopted_run = None
                        handle.phase = convoy.RUN
                        yield from run.run()
                        continue
                    block_index = staging.blocks_ready
                    # Coalesced fast path (see _pull_blocks): stream every
                    # block the child holds — or will produce on a known
                    # schedule (cascade) — as one timeline event.
                    if config_.flow_scheduling or same_node:
                        horizon = input_coverage(child_entry, staging.num_blocks)
                        if horizon - block_index >= 2 and not staging._no_coalesce:
                            run_src = parent_node if same_node else child_node
                            if coalesce_eligible(links, run_src, parent_node):
                                run = build_pull_run(
                                    config_,
                                    run_src,
                                    parent_node,
                                    flow,
                                    links,
                                    child_entry,
                                    staging,
                                    block_index,
                                    horizon,
                                    local_copy=same_node,
                                    account_out=account_out,
                                    account_in=account_in,
                                )
                                handle.phase = convoy.RUN
                                yield from run.run()
                                continue
                            # Contended link (e.g. sibling partials on the
                            # parent downlink): try the convoy fast path.
                            run = convoy.maybe_form(handle, block_index)
                            if run is not None:
                                handle.phase = convoy.RUN
                                yield from run.run()
                                continue
                    if (
                        child_entry._inflight is not None
                        and child_entry.blocks_ready <= block_index
                    ):
                        # About to park outside a coalesced run: per-block
                        # mark ordering required (see _pull_blocks).
                        child_entry.decoalesce()
                    gate = child_entry.wait_for_blocks(block_index + 1)
                    handle.phase = convoy.GATE
                    handle.gate_event = gate
                    yield self._race_peer_failure(gate, child_node, parent_node)
                    handle.gate_event = None
                    if handle.poked:
                        handle.poked = False
                        continue
                    if not child_node.alive or not parent_node.alive:
                        raise TransferError("peer failed during reduce stream", node=child_node)
                    nbytes = config.block_bytes(staging.size, block_index)
                    if same_node:
                        result = yield from local_copy_block(
                            config, parent_node, nbytes, handle
                        )
                    else:
                        result = yield from transfer_block(
                            config, child_node, parent_node, nbytes, flow, handle
                        )
                    if result is ADOPTED:
                        continue
                    if not same_node:
                        child_store.account_flow_out(flow, nbytes)
                        runtime.store(parent_node).account_flow_in(flow, nbytes)
                    staging.mark_block_ready(block_index)
                # Parked on the seal from here on: a completed, passive
                # stream as far as any later convoy formation is concerned.
                handle.phase = convoy.TOP
                yield self._race_peer_failure(
                    child_entry.wait_sealed(), child_node, parent_node
                )
                if child_entry.sealed:
                    staging.seal(child_entry.payload)
            finally:
                if handle.preplaced is not None:
                    handle.preplaced.cancel()
                    handle.preplaced = None
                unregister_stream(links, handle)
                child_entry.ref_count -= 1
        except Interrupt:
            return
        except TransferError:
            return

    def _race_own_failure(self, event: Event, node: Node) -> Event:
        return self.sim.any_of([event, node.failure_event()])

    def _race_peer_failure(self, event: Event, peer: Node, own: Node) -> Event:
        return self.sim.any_of([event, peer.failure_event(), own.failure_event()])

    # -- failure repair -------------------------------------------------------------
    def _hook_failures(self) -> None:
        if self._failure_hooked:
            return
        self._failure_hooked = True
        for node in self.runtime.cluster.nodes:
            node.on_failure(self._on_node_failure)

    def _on_node_failure(self, node: Node) -> None:
        if self._finished.triggered:
            return
        affected = [
            state
            for state in self.slots
            if state.host is not None and state.host.node_id == node.node_id
        ]
        if not affected:
            return
        self.sim.process(
            self._repair(affected), name=f"reduce-repair-{self.target_id}-n{node.node_id}"
        )

    def _repair(self, failed_states: list[_SlotState]) -> Generator:
        """Replace failed slots and restart their ancestors (Section 3.5.2)."""
        # Give in-flight transfers one scheduling round to observe the failure.
        yield self.sim.timeout(0)
        if self._finished.triggered:
            # Finished or aborted while this repair was queued; re-spawning
            # slots now would leak processes and reference counts.
            return
        to_restart: set[int] = set()
        for state in failed_states:
            if state.object_id is not None:
                # The object may be reconstructed later; watch for it again.
                self._assigned_ids.discard(state.object_id)
                self._watch_source(state.object_id)
            self._teardown_slot(state)
            state.object_id = None
            state.host = None
            state.output_entry = None
            if state.slot.parent is None:
                # The root's target entry died with its host; the restarted
                # root seeds its prefix from a surviving receiver copy.
                state.seed_prefix = True
            # Every ancestor must clear its partial result.
            parent_rank = state.slot.parent
            while parent_rank is not None:
                to_restart.add(parent_rank)
                parent_rank = self.tree[parent_rank].parent

        for rank in sorted(to_restart, key=lambda r: -self._depth_of(r)):
            ancestor = self.slots[rank]
            if ancestor.host is None or not ancestor.host.alive:
                continue
            self._teardown_slot(ancestor, keep_assignment=True)
            ancestor.generation += 1
            size = self.runtime.directory.known_size(ancestor.object_id) or 0
            self._create_output_entry(ancestor, size)
            ancestor.notify_assigned()
            self._spawn_slot_process(ancestor)

        # Reassign the failed slots to the next ready objects.  The main
        # coordinator loop may be filling slots concurrently, so re-check the
        # slot after every blocking wait and never overwrite an assignment.
        for state in failed_states:
            while not state.assigned:
                object_id = yield from self._next_ready_object()
                if self._finished.triggered:
                    return
                if state.assigned:
                    self._ready_queue.insert(0, object_id)
                    break
                self._assign(state, object_id)

    def _depth_of(self, rank: int) -> int:
        depth = 0
        parent = self.tree[rank].parent
        while parent is not None:
            depth += 1
            parent = self.tree[parent].parent
        return depth

    def _teardown_slot(self, state: _SlotState, keep_assignment: bool = False) -> None:
        if state.process is not None and state.process.is_alive:
            state.process.interrupt("reduce repair")
        state.process = None
        for proc in state.stream_processes:
            if proc.is_alive:
                proc.interrupt("reduce repair")
        state.stream_processes = []
        if keep_assignment and state.output_entry is not None:
            host = state.host
            if host is not None and host.alive and not state.output_entry.sealed:
                if (
                    state.slot.parent is None
                    and self.num_objects == len(self.source_ids)
                ):
                    # Streaming recovery (carried ROADMAP item): with no
                    # spare sources every failed contributor is reconstructed
                    # from lineage with identical data, so the root's
                    # already-reduced prefix stays valid.  Keep it — the
                    # restarted root resumes at ``blocks_ready`` and the
                    # receivers that kept those blocks stream the repaired
                    # target incrementally instead of paying a full
                    # re-broadcast.  (With spare sources the replacement may
                    # be a *different* object, so the prefix must go.)
                    state.output_entry.freeze_progress()
                    self.runtime.root_progress_preserved += 1
                else:
                    state.output_entry.reset_progress()
