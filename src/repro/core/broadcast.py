"""Receiver-driven broadcast: the data path behind ``Get`` (Section 3.4.1).

There is no explicit broadcast primitive in Hoplite.  A broadcast simply
happens when many receivers ``Get`` the same object: each receiver asks the
directory for a source, the directory hands out each copy to at most one
receiver at a time, and receivers that hold partial copies immediately
become eligible sources themselves.  The effect is a broadcast tree that
grows on the fly in receiver-arrival order.

Failure handling follows Section 3.5.1: when a source dies mid-transfer the
receiver keeps the blocks it already has, re-queries the directory excluding
sources whose fetch chain depends on the receiver itself (cycle avoidance),
and resumes from the first missing block.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.net import convoy
from repro.net.coalesce import (
    build_pull_run,
    coalesce_eligible,
    input_coverage,
    nic_path_links,
    register_stream,
    unregister_stream,
)
from repro.net.convoy import StreamHandle
from repro.net.flowsched import ADOPTED, Flow, FlowClass
from repro.net.node import Node
from repro.net.transport import TransferError, transfer_block, transfer_bytes
from repro.store.object_store import StoredObject
from repro.store.objects import ObjectID

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import HopliteRuntime


def fetch_object(
    runtime: "HopliteRuntime",
    node: Node,
    object_id: ObjectID,
    flow: Optional[Flow] = None,
) -> Generator:
    """Fetch ``object_id`` into ``node``'s local store.

    Returns the local :class:`StoredObject` once it is complete.  This is the
    receiver side of Hoplite's broadcast; it is driven from a simulation
    process (usually :meth:`HopliteClient.get`).  ``flow`` tags the fetch's
    transfers for admission priority and per-flow bandwidth accounting; the
    default is a bulk-class flow named after the object and receiver.
    """
    if flow is None:
        flow = Flow(f"get:{object_id}->n{node.node_id}", FlowClass.BULK)
    store = runtime.store(node)
    directory = runtime.directory

    existing = store.try_get_entry(object_id)
    if existing is not None:
        # The object is already present locally, or is being produced locally
        # right now (e.g. a local Put or reduce output still copying in).
        # Waiting for it is always cheaper than fetching a remote copy.
        if not existing.sealed:
            yield existing.wait_sealed()
        return existing

    # Block until the object exists somewhere and its size is known.
    yield from directory.wait_for_object(node, object_id)
    size = directory.known_size(object_id)
    if size is None:  # pragma: no cover - defensive; wait_for_object guarantees it
        raise TransferError(f"object {object_id} has no known size")

    entry = store.create_or_get(object_id, size)
    if entry.sealed:
        return entry

    # Hold a reference while the fetch writes into the partial: progress
    # waiters are registered on the *source* entry, so without this the
    # in-flight destination copy would look idle to the eviction policy.
    entry.ref_count += 1
    try:
        if runtime.options.enable_dynamic_broadcast:
            yield from _fetch_dynamic(runtime, node, object_id, entry, flow)
        else:
            yield from _fetch_from_origin(runtime, node, object_id, entry, flow)
    finally:
        entry.ref_count -= 1
    return entry


def _fetch_dynamic(
    runtime: "HopliteRuntime",
    node: Node,
    object_id: ObjectID,
    entry: StoredObject,
    flow: Flow,
) -> Generator:
    """The full receiver-driven protocol with partial sources and recovery."""
    directory = runtime.directory
    #: node_id -> incarnation at the time the source failed us.  A node that
    #: recovers (and re-publishes the object) gets a fresh incarnation and
    #: becomes eligible again, so a repaired cluster never wedges on a stale
    #: exclusion set; the directory re-evaluates this map on every wake-up.
    excluded: dict[int, int] = {}
    while not entry.sealed:
        source = yield from directory.acquire_transfer_source(node, object_id, excluded)
        source_node = runtime.node(source.node_id)
        succeeded = False
        try:
            yield from _pull_blocks(runtime, source_node, node, object_id, entry, flow)
            succeeded = True
        except TransferError:
            # The source died (or lost the object).  Keep our partial blocks,
            # exclude the dead source, and look for another one.
            excluded[source.node_id] = source_node.incarnation
        if succeeded:
            source_entry = runtime.store(source_node).try_get_entry(object_id)
            payload = source_entry.payload if source_entry is not None else None
            metadata = dict(source_entry.metadata) if source_entry is not None else {}
            entry.metadata.update(metadata)
            entry.seal(payload)
        yield from directory.release_transfer_source(node, object_id, source, succeeded)


def _fetch_from_origin(
    runtime: "HopliteRuntime",
    node: Node,
    object_id: ObjectID,
    entry: StoredObject,
    flow: Flow,
) -> Generator:
    """Ablation path: always pull from a complete copy (no relay through receivers).

    This reproduces the behaviour the paper attributes to existing task
    systems: every receiver contends for the origin's uplink.
    """
    directory = runtime.directory
    config = runtime.config
    while not entry.sealed:
        record = yield from directory.wait_for_object(node, object_id)
        complete_sources = [
            info
            for info in record.locations.values()
            if info.complete
            and info.node_id != node.node_id
            and runtime.node(info.node_id).alive
        ]
        if not complete_sources:
            # No complete copy yet: wait for one to appear.
            yield runtime.sim.timeout(config.rpc_latency)
            continue
        source_node = runtime.node(complete_sources[0].node_id)
        try:
            source_entry = runtime.store(source_node).get_entry(object_id)
            source_entry.ref_count += 1
            try:
                yield source_entry.wait_sealed()
                yield from transfer_bytes(config, source_node, node, entry.size, flow)
                runtime.store(source_node).account_flow_out(flow, entry.size)
                runtime.store(node).account_flow_in(flow, entry.size)
            finally:
                source_entry.ref_count -= 1
            entry.metadata.update(source_entry.metadata)
            entry.seal(source_entry.payload)
            yield from directory.publish_complete(node, object_id, entry.size)
        except (TransferError, KeyError):
            yield runtime.sim.timeout(config.failure_detection_delay)


def _pull_blocks(
    runtime: "HopliteRuntime",
    source_node: Node,
    dest_node: Node,
    object_id: ObjectID,
    entry: StoredObject,
    flow: Flow,
) -> Generator:
    """Stream the missing blocks of ``entry`` from ``source_node``.

    With pipelining enabled a block is pulled as soon as the source holds it,
    even if the source copy is still incomplete.  Without pipelining the
    source must be complete first.
    """
    config = runtime.config
    sim = runtime.sim
    source_store = runtime.store(source_node)
    source_entry = source_store.try_get_entry(object_id)
    if source_entry is None:
        raise TransferError(
            f"source node {source_node.node_id} no longer holds {object_id}",
            node=source_node,
        )

    # Reference the serving copy: a capacity-limited source store must not
    # evict it mid-stream (the receiver would silently lose the payload).
    source_entry.ref_count += 1
    dest_store = runtime.store(dest_node)
    links = nic_path_links(source_node, dest_node)
    account_out = lambda nb: source_store.account_flow_out(flow, nb)  # noqa: E731
    account_in = lambda nb: dest_store.account_flow_in(flow, nb)  # noqa: E731
    handle = StreamHandle(
        "nic",
        config,
        source_node,
        dest_node,
        flow,
        links,
        entry,
        source_entry=source_entry,
        account_out=account_out,
        account_in=account_in,
    )
    register_stream(links, handle)
    try:
        if not runtime.options.enable_pipelining:
            yield _race_failure(runtime, source_entry.wait_sealed(), source_node)
            _ensure_alive(source_node)

        while entry.blocks_ready < entry.num_blocks:
            handle.phase = convoy.TOP
            run = handle.adopted_run
            if run is not None:
                # A convoy formed around this stream while it was parked;
                # drive our planned share of it.
                handle.adopted_run = None
                handle.phase = convoy.RUN
                yield from run.run()
                continue
            block_index = entry.blocks_ready
            # Coalesced fast path: every block the source already holds, in
            # one timeline event — exact per-block semantics guaranteed by
            # the run's virtual holds and re-splitting (see net/coalesce).
            if config.flow_scheduling:
                # Horizon: blocks the source holds now, plus — the relay
                # cascade — blocks its own coalesced run will deliver at
                # known instants.
                horizon = input_coverage(source_entry, entry.num_blocks)
                if horizon - block_index >= 2 and not entry._no_coalesce:
                    if coalesce_eligible(links, source_node, dest_node):
                        run = build_pull_run(
                            config,
                            source_node,
                            dest_node,
                            flow,
                            links,
                            source_entry,
                            entry,
                            block_index,
                            horizon,
                            account_out=account_out,
                            account_in=account_in,
                        )
                        handle.phase = convoy.RUN
                        yield from run.run()
                        continue
                    # Exclusive coalescing declined (contended link): try the
                    # convoy fast path over the lockstep group instead.
                    run = convoy.maybe_form(handle, block_index)
                    if run is not None:
                        handle.phase = convoy.RUN
                        yield from run.run()
                        continue
            if (
                source_entry._inflight is not None
                and source_entry.blocks_ready <= block_index
            ):
                # This pull is about to park on the source's arithmetic
                # schedule outside a coalesced run of its own (contended
                # links, or a schedule tail too short to coalesce).  Its
                # resume order against competing flows matters — and links
                # can become contended while parked — so the source's marks
                # must be delivered per-block from here on.
                source_entry.decoalesce()
            gate = source_entry.wait_for_blocks(block_index + 1)
            handle.phase = convoy.GATE
            handle.gate_event = gate
            yield _race_failure(runtime, gate, source_node)
            handle.gate_event = None
            if handle.poked:
                handle.poked = False
                continue
            _ensure_alive(source_node)
            nbytes = config.block_bytes(entry.size, block_index)
            result = yield from transfer_block(
                config, source_node, dest_node, nbytes, flow, handle
            )
            if result is ADOPTED:
                continue
            source_store.account_flow_out(flow, nbytes)
            dest_store.account_flow_in(flow, nbytes)
            entry.mark_block_ready(block_index)
    finally:
        if handle.preplaced is not None:
            handle.preplaced.cancel()
            handle.preplaced = None
        unregister_stream(links, handle)
        source_entry.ref_count -= 1
    # Touch the sim clock so zero-block objects still take a well-defined path.
    if entry.num_blocks == 0:  # pragma: no cover - num_blocks is always >= 1
        yield sim.timeout(0)


def _race_failure(runtime: "HopliteRuntime", event, peer: Node):
    """Wait for ``event`` but wake up early if ``peer`` fails."""
    return runtime.sim.any_of([event, peer.failure_event()])


def _ensure_alive(peer: Node) -> None:
    if not peer.alive:
        raise TransferError(f"node {peer.node_id} failed during transfer", node=peer)
